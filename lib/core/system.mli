(** Whole-system assembly: the toolkit's initialization protocol.

    Mirrors §4.1: create the simulated world, add one CM-Shell per
    participating site (or have a shell serve several sites), register
    each source's CM-Translator, then install a strategy — the system
    distributes the rules by LHS site, initializes CM auxiliary data,
    registers the periodic timers the rules mention, and wires failure
    propagation.  Declared guarantees are tracked: metric failures at an
    involved site invalidate the metric guarantees, logical failures
    invalidate all of them, and a reset restores them (§5).

    After a run, {!timeline} and {!check_validity} hand the execution to
    the guarantee checker and the Appendix-A validity checker. *)

type t

(** All the knobs of a system run in one value.  [Config.default] is a
    clean, reliable, FIFO network at seed 42; derive variations with the
    with-style setters:

    {[
      System.Config.(default |> with_seed 7 |> with_faults lossy
                             |> with_reliable Reliable.default_config
                             |> with_obs (Obs.create ()))
    ]} *)
module Config : sig
  type t = {
    seed : int;  (** simulation PRNG seed *)
    latency : Cm_net.Net.latency option;  (** [None] = network default *)
    fifo : bool;
        (** [false] disables in-order delivery — only for the ablation
            experiment showing why Appendix A.2's property 7 matters *)
    faults : Cm_net.Net.faults option;
        (** default loss/duplication model for every network link *)
    reliable : Reliable.config option;
        (** insert a {!Reliable} delivery layer between the network and
            every shell, restoring exactly-once in-order delivery on top
            of the faults and (with heartbeats enabled) turning dead
            peers into §5 failure notices *)
    obs : Obs.t option;
        (** observability registry; [None] = {!Obs.noop}, zero overhead *)
    durability : Journal.durability;
        (** what the system remembers across crashes
            ({!Journal.durability.None} by default — byte-identical to
            the pre-recovery behaviour).  [Journal] and
            [Journal_with_checkpoint] give every site a write-ahead
            {!Journal} and a {!Recovery} manager, and make the reliable
            layer epoch-aware, so {!restart_site} replays, re-queues,
            and reports the crash as a metric failure (§5). *)
    dispatch : Shell.dispatch;
        (** rule matching strategy for every shell:
            {!Shell.dispatch.Indexed} (default) dispatches events through
            the {!Cm_rule.Rule_index} discrimination buckets;
            {!Shell.dispatch.Naive} retains the pre-index linear scan —
            the oracle the E15 benchmark and the differential tests
            compare against.  Both produce byte-identical traces. *)
    monitor : bool;
        (** stream every declared copy constraint through
            {!Monitor} ([false] by default): per parameter vector, the
            §3.3.1 guarantee forms are checked incrementally as events
            are recorded, and a live per-copy staleness verdict feeds
            the read router's quarantine machinery.  Observation only —
            the trace, the PRNG and the dispatch path are untouched, so
            a monitored run is byte-identical to an unmonitored one. *)
    monitor_tick : float;
        (** staleness re-evaluation period of the monitor (default 1.0
            s) — the "poll period" in the κ + tick detection bound for
            silently dying notification channels (§5 [Silent_drop]). *)
    shards : int;
        (** how many OCaml domains the world is partitioned across
            (default 1 — today's sequential single-wheel execution,
            byte-identical to every release before sharding existed).
            A plain {!System} ignores values above 1: partitioned
            execution is built by [Cm_shard.Fabric], which reads this
            field and assembles one shard-slot system per shard. *)
    shard_slot : (int * int) option;
        (** [Some (k, n)]: this system is shard [k] of [n] in a
            [Cm_shard.Fabric] — its sim seed is derived per shard, its
            network runs keyed per-link draws, its trace ids are strided
            ([k, k+n, …]), and strategy state for sites this shard does
            not hold is skipped rather than an error.  Set by the
            fabric, not by applications; [None] (default) is the whole
            world. *)
  }

  val default : t
  val seeded : int -> t
  (** [seeded n] is [default] at seed [n] — the most common override. *)

  val with_seed : int -> t -> t
  val with_latency : Cm_net.Net.latency -> t -> t
  val with_fifo : bool -> t -> t
  val with_faults : Cm_net.Net.faults -> t -> t
  val with_reliable : Reliable.config -> t -> t
  val with_obs : Obs.t -> t -> t
  val with_durability : Journal.durability -> t -> t
  val with_dispatch : Shell.dispatch -> t -> t
  val with_monitor : bool -> t -> t
  val with_monitor_tick : float -> t -> t

  val with_shards : int -> t -> t
  (** @raise Invalid_argument when below 1. *)

  val with_shard_slot : int * int -> t -> t
  (** Fabric-internal; see {!type-t.shard_slot}. *)
end

val create : ?config:Config.t -> Cm_rule.Item.locator -> t
(** Build the simulated world described by [config] (default
    {!Config.default}).  When [config.obs] is set, the network's
    send/drop/duplicate/latency hooks, the reliable layer's counters,
    every shell's match/fire/guard instruments, and the system's
    guarantee bookkeeping all record into that registry. *)

val sim : t -> Cm_sim.Sim.t
val net : t -> Msg.t Cm_net.Net.t

val reliable : t -> Reliable.t option
(** The reliable-delivery layer, when one was configured — source of
    retransmission/ack counters for the message-cost experiments. *)

val recovery : t -> Recovery.t option
(** The crash-recovery manager, when [config.durability] is not
    {!Journal.durability.None}. *)

val journals : t -> Journal.registry option

val journal : t -> site:string -> Journal.t option
(** The site's write-ahead journal under a durable configuration. *)

val crash_site : t -> site:string -> unit
(** Crash a site.  With a recovery manager this goes through
    {!Recovery.crash}; without one it is the raw
    {!Cm_net.Net.crash_site}. *)

val restart_site : t -> site:string -> unit
(** Restart a site.  With a recovery manager this runs the full §5
    protocol (replay, re-queue, epoch bump, metric failure notice);
    without one the endpoint silently comes back with whatever stale
    in-memory state it had. *)

val obs : t -> Obs.t
(** The configured observability registry, or {!Obs.noop}. *)

val monitor : t -> Monitor.t option
(** The streaming guarantee monitor, when [config.monitor] is set.  It
    is attached to the trace at creation; {!declare_copies} registers
    every declared pair with it automatically. *)

val trace : t -> Cm_rule.Trace.t
val locator : t -> Cm_rule.Item.locator

val add_shell : t -> site:string -> Shell.t
(** One shell per site; @raise Invalid_argument on duplicates. *)

val shell : t -> site:string -> Shell.t
(** The shell responsible for [site] (its own or a routed one).
    @raise Not_found if no shell handles it. *)

val shells : t -> (string * Shell.t) list
(** Every shell by primary site, sorted — the deterministic iteration
    order used when a change must reach all sites (e.g. an epoch
    transition). *)

val register_translator : t -> shell:Shell.t -> Cmi.t -> unit
(** Attach, route the translator's site to that shell, and collect its
    interface statements. *)

val interface_rules : t -> Cm_rule.Rule.t list
(** Everything the translators reported — the toolkit's view of what
    each database offers. *)

val install : t -> Strategy.t -> unit
(** Distribute the strategy's rules to all shells, write its auxiliary
    data, and register [P(p)] timers for its polling rules. *)

val strategy_rules : t -> Cm_rule.Rule.t list
val all_rules : t -> Cm_rule.Rule.t list

val apply_aux_init :
  t -> (Cm_rule.Item.t * Cm_rule.Value.t) list -> unit
(** Write a strategy's auxiliary items at their owning shells — done by
    {!install} at configuration time and by {!Evolution} at cutover, so
    an incoming epoch never inherits another strategy's stale auxiliary
    state (e.g. a cached-propagation cache). *)

val register_strategy_periodics : t -> Cm_rule.Rule.t list -> unit
(** Register [P(p)] timers for the polling rules among [rules];
    duplicate (site, period) registrations are ignored. *)

type guarantee_handle

val declare_guarantee :
  t -> sites:string list -> Guarantee.t -> guarantee_handle
(** Track validity of a guarantee involving the given sites.

    Low-level registration.  For declared [constraint copy] directives
    prefer {!declare_copies} + the {!Guarantee_view} facade: it bundles
    the handle with the Derive report and epoch-survival state, so
    callers don't poke handles directly. *)

val guarantee_valid : guarantee_handle -> bool
val guarantee_of : guarantee_handle -> Guarantee.t
val invalidations : guarantee_handle -> (string * Msg.failure_kind) list

(** The unified read-side guarantee record — one per declared copy
    constraint, joining the three previously separate surfaces:
    {!Derive.copy_guarantees} (static κ), the live {!guarantee_handle}
    (§5 validity), and {!Evolution}'s survival classification (did the
    current rule epoch keep the guarantee).  The read router consumes
    exactly this record; [cmtool check]/[cmtool evolve] report from it. *)
module Guarantee_view : sig
  type survival = {
    es_epoch : int;  (** epoch that took over at the cutover *)
    es_guarantee : string;  (** {!Guarantee.name}: "(1) follows", … *)
    es_status : string;  (** "kept" | "upgraded" | "lost" | "never" *)
    es_reason : string option;  (** set for "lost"/"never" *)
  }

  type entry = {
    gv_source : string;  (** master item base *)
    gv_target : string;  (** copy item base *)
    gv_master_site : string;
    gv_site : string;  (** where the copy lives *)
    gv_report : Derive.report;  (** all four §3.3.1 verdicts *)
    gv_kappa : float option;  (** κ iff "(4) metric-follows" proved *)
    gv_valid : bool;  (** live §5 validity of the metric guarantee *)
    gv_invalidations : (string * Msg.failure_kind) list;
    gv_epoch_survival : survival list;
        (** most recent cutover's classification; [] before any *)
  }

  val metric_name : string
  (** The survival-entry name of guarantee (4), ["(4) metric-follows"]. *)

  val kappa_of_report : Derive.report -> float option
  val blocking_reason : Derive.report -> string option
  (** When all four guarantees are unprovable, the follows verdict's
      reason — the GRT001 analysis condition. *)

  val static :
    interfaces:Cm_rule.Rule.t list ->
    strategy:Cm_rule.Rule.t list ->
    master_site:string ->
    site:string ->
    source:string ->
    target:string ->
    entry
  (** Pure constructor for analysis contexts with no running system:
      derives the report and presents a valid, survival-free entry. *)

  val metric_lost : entry -> bool
  (** The current epoch classified guarantee (4) as lost/never. *)

  val qualifies : ?slo:float -> entry -> (float, string) result
  (** Whether a read with staleness budget [slo] may be served from this
      copy: κ must be proved, the current epoch must not have lost the
      metric guarantee, the handle must be valid, and κ ≤ [slo]
      {e inclusive} — a copy exactly at the bound qualifies, since
      Derive's κ (sampling period included for Sampled channels) and the
      SLO are both end-to-end seconds.  [Ok κ] on success; the [Error]
      strings ["epoch-lost"], ["unprovable"], ["invalidated"],
      ["over-slo"] are the router's skip-reason vocabulary, in that
      precedence order — the epoch verdict outranks the κ probe because
      an epoch that dropped the guarantee usually makes κ unprovable
      too, and "epoch-lost" explains the transition. *)
end

val declare_copies :
  ?interfaces:Cm_rule.Rule.t list ->
  ?strategy:Cm_rule.Rule.t list ->
  t ->
  (string * string) list ->
  unit
(** Register [(source, target)] copy constraints (the parsed
    [constraint copy] directives): derive each report from the currently
    collected interface + strategy rules (overridable with [interfaces]
    / [strategy], e.g. when extra rule files describe the running
    program), locate master and copy sites, and declare the live
    metric-guarantee handle over both.  Idempotent per pair; declaration
    order is preserved by {!guarantee_view}. *)

val copy_view :
  t -> source:string -> target:string -> Guarantee_view.entry option

val guarantee_view : t -> Guarantee_view.entry list
(** Every declared copy, in declaration order, with live state. *)

val copy_qualifies :
  ?slo:float -> t -> source:string -> target:string -> (float, string) result
(** {!Guarantee_view.qualifies} without materializing the entry — the
    router's per-read probe ([Error "undeclared"] for unknown pairs). *)

val note_epoch_survival :
  t ->
  source:string ->
  target:string ->
  report:Derive.report ->
  Guarantee_view.survival list ->
  unit
(** Called by {!Evolution} at cutover: replace the copy's derived report
    with the incoming epoch's and record its survival classification.
    Unknown pairs are ignored (the constraint may not be declared on
    this system). *)

val run : t -> until:float -> unit

val timeline : ?initial:(Cm_rule.Item.t * Cm_rule.Value.t) list -> t -> Cm_rule.Timeline.t

val check_guarantee :
  ?initial:(Cm_rule.Item.t * Cm_rule.Value.t) list ->
  ?ignore_after:float ->
  t ->
  Guarantee.t ->
  Guarantee.report
(** Check against the recorded trace, up to the current simulation time. *)

val check_validity :
  ?initial:(Cm_rule.Item.t * Cm_rule.Value.t) list -> t -> Cm_rule.Validity.violation list
(** Appendix-A validity of the recorded trace against interface +
    strategy rules.  Pass [initial] when interface conditions read item
    values (read and periodic-notify interfaces) and items existed
    before the trace began. *)
