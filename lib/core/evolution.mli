(** Runtime rule evolution: versioned rule epochs with drain-and-cutover.

    §4.2.3 of the paper walks through an interface change (the payroll
    database moving from update notifications to a read interface) as an
    offline reconfiguration.  This module performs that change on a
    {e running} system instead, reusing the reliable layer's epoch
    framing: every installed rule program is a numbered {e rule epoch},
    in-flight [Fire] envelopes carry the epoch that produced them, and a
    change proceeds through a per-site state machine —

    {v propose -> cutover (old epoch drains) -> retire v}

    A {e proposed} program is staged (and journaled) at every shell
    without affecting dispatch.  {e Cutover} atomically redirects new
    event dispatch to the proposed program, while firings produced under
    the old epoch and still on the wire continue to execute under the
    old rules (the old epoch is {e draining}).  {e Retirement} ends the
    drain: stale-epoch envelopes arriving afterwards are rejected and
    counted ([Shell.stale_epoch_rejections], the
    [shell_stale_epoch_rejections] counter) — never silently dropped,
    never executed under rules that did not produce them.

    On every cutover the {!Derive} prover re-runs over both epochs'
    programs and classifies each §3.3 guarantee of each declared copy
    constraint as kept / upgraded / lost{i {reason}} — answering the
    question the paper leaves to the administrator: which guarantees
    survive the change? *)

(** {1 Guarantee survival} *)

type survival =
  | Kept  (** proved under both epochs *)
  | Upgraded  (** unprovable before, proved after *)
  | Lost of string  (** proved before, unprovable after — the reason *)
  | Never of string  (** unprovable under both epochs *)

type guarantee_survival = {
  gs_name : string;  (** {!Guarantee.name} vocabulary, e.g. ["(2) leads"] *)
  gs_before : Derive.verdict;
  gs_after : Derive.verdict;
  gs_survival : survival;
}

type constraint_survival = {
  cs_source : string;  (** source item-family base name *)
  cs_target : string;  (** target item-family base name *)
  cs_guarantees : guarantee_survival list;  (** the four §3.3.1 forms *)
}

(** One completed cutover. *)
type transition = {
  tr_from : int;
  tr_to : int;
  tr_at : float;  (** simulation time of the cutover *)
  tr_strategy : string;  (** incoming strategy's name *)
  tr_survivals : constraint_survival list;
}

(** One automatic rollback: a cutover that regressed a [required] pair,
    undone by re-proposing the outgoing program under a fresh epoch. *)
type rollback = {
  rb_at : float;  (** simulation time (= the bad cutover's time) *)
  rb_from : int;  (** the regressing epoch, rolled back *)
  rb_to : int;  (** the epoch whose program was restored *)
  rb_via : int;  (** fresh epoch number carrying the restored program *)
  rb_strategy : string;  (** name of the rejected strategy *)
  rb_lost : (string * string * string) list;
      (** (source, target, guarantee name) triples classified [Lost] *)
}

val classify : Derive.verdict -> Derive.verdict -> survival
val survival_status : survival -> string
(** ["kept"], ["upgraded"], ["lost"], or ["never"] — reason elided. *)

val survival_to_string : survival -> string
(** Like {!survival_status} but with the reason: ["lost{...}"]. *)

val compare_programs :
  interfaces_before:Cm_rule.Rule.t list ->
  interfaces_after:Cm_rule.Rule.t list ->
  strategy_before:Cm_rule.Rule.t list ->
  strategy_after:Cm_rule.Rule.t list ->
  constraints:(string * string) list ->
  constraint_survival list
(** Static comparison — feed both epochs' programs to
    {!Derive.copy_guarantees} for each [(source, target)] base-name pair
    and classify every guarantee.  Pure; used by [cmtool evolve
    --dry-run] without building a system. *)

val kept_names : transition -> string list
(** Names of guarantees proved under {e both} epochs of the transition —
    the set the chaos harness holds the run to across a cutover. *)

val survivals_to_text : constraint_survival list -> string
(** Deterministic human-readable rendering (the pinned golden format). *)

val survivals_to_json : constraint_survival list -> string
(** Deterministic JSON rendering; reasons are escaped. *)

(** {1 Runtime manager} *)

type t

val create :
  ?constraints:(string * string) list ->
  ?required:(string * string) list ->
  ?interfaces:Cm_rule.Rule.t list ->
  System.t ->
  t
(** Manage epochs for a built system.  Call {e after} the base program is
    installed: the current rules snapshot ({!System.strategy_rules})
    becomes epoch 0's program for survival comparisons.  [constraints]
    are the copy constraints (source/target base names) re-proved at
    each cutover; [interfaces] defaults to {!System.interface_rules}.

    [required] (the CM-RID [required] attribute, a subset of
    [constraints] — checked) marks pairs under self-healing: a cutover
    whose survival report classifies any of their guarantees as {!Lost}
    is rolled back automatically — the outgoing program is re-proposed
    under a fresh epoch and cut over in the same simulation instant, the
    rollback is journaled write-ahead ({!Journal.record.Epoch_rollback})
    at every durable site, and the episode is recorded in {!rollbacks}
    (and as an [evolution_rollbacks] counter).  [Never] does not
    trigger: the prior epoch is no better a refuge for a guarantee that
    was unprovable all along.
    @raise Invalid_argument if [required] is not a subset of
    [constraints]. *)

val propose : t -> Strategy.t -> (int, string) result
(** Stage [strategy] as the next epoch at every shell (journaled
    write-ahead).  At most one outstanding proposal; returns the
    assigned epoch number. *)

val cutover : t -> (transition, string) result
(** Switch dispatch to the proposed epoch at every shell, apply the
    incoming strategy's auxiliary initialization and periodic timers,
    and move the old epoch to draining.  Re-derives guarantee survival
    and records it on the returned transition (and in Obs:
    [evolution_epoch] gauge, [evolution_guarantee_survival] counters,
    [evolution_guarantee_held] gauges).

    If the survival report loses a guarantee of a [required] pair the
    cutover is rolled back before returning (see {!create}); the
    returned transition is still the {e regressing} one — inspect
    {!rollbacks} / {!current_epoch} for the restored state. *)

val retire : t -> epoch:int -> (unit, string) result
(** End the drain of a draining epoch: from now on its envelopes are
    rejected and counted at the shells. *)

val retire_after : t -> epoch:int -> delay:float -> unit
(** Schedule {!retire} at a fixed delay from now — used by the chaos
    harness so retirement happens at the same simulation time in oracle
    and faulty runs. *)

val quiesce_retire : ?check_period:float -> t -> unit
(** Retire every currently-draining epoch once the reliable transport is
    quiescent (no unacknowledged envelopes), polling every
    [check_period] (default [1.0]) simulated seconds.  Without a
    reliable layer the epochs retire at the first check. *)

val evolve :
  ?quiesce:bool -> ?check_period:float -> t -> Strategy.t -> (transition, string) result
(** [propose] + [cutover] in one step; when [quiesce] (default [true]),
    also arms {!quiesce_retire} for the now-draining old epoch. *)

val current_epoch : t -> int
val current_rules : t -> Cm_rule.Rule.t list
val draining : t -> int list
(** Epochs cut over but not yet retired, ascending. *)

val transitions : t -> transition list
(** All completed cutovers, oldest first — rollbacks' restoring
    cutovers included. *)

val rollbacks : t -> rollback list
(** All automatic rollbacks, oldest first. *)

val constraints : t -> (string * string) list
val required : t -> (string * string) list
val retirements : t -> int

val stale_rejections : t -> int
(** Total stale-epoch envelope rejections across all shells. *)
