module Db = Cm_relational.Database

type built = {
  system : System.t;
  shells : (string * Shell.t) list;
  relational : (string * Tr_relational.t) list;
  kvfiles : (string * Tr_kvfile.t) list;
  databases : (string * Db.t) list;
  stores : (string * Cm_sources.Kvfile.t) list;
}

let op_value ops op ~default =
  match List.assoc_opt op ops with Some v -> v | None -> default

let latencies_of decl =
  let get op default = op_value decl.Cmrid.s_latencies op ~default in
  {
    Tr_relational.read = get Cmrid.Read_op 0.2;
    write = get Cmrid.Write_op 0.2;
    notify = get Cmrid.Notify_op 1.0;
    delete = get Cmrid.Delete_op 0.2;
  }

let deltas_of decl (latencies : Tr_relational.latencies) =
  let get op default = op_value decl.Cmrid.s_deltas op ~default in
  {
    Tr_relational.read = get Cmrid.Read_op (latencies.Tr_relational.read *. 5.0);
    write = get Cmrid.Write_op (latencies.Tr_relational.write *. 5.0);
    notify = get Cmrid.Notify_op (latencies.Tr_relational.notify *. 5.0);
    delete = get Cmrid.Delete_op (latencies.Tr_relational.delete *. 5.0);
  }

let relational_binding (item : Cmrid.item_decl) =
  let notify =
    Option.map
      (fun (n : Cmrid.notify_decl) ->
        let filter, filter_expr =
          match n.Cmrid.n_threshold with
          | None -> (None, None)
          | Some threshold ->
            ( Some
                (fun ~old_value ~new_value ->
                  match old_value, new_value with
                  | (Cm_rule.Value.Int _ | Cm_rule.Value.Float _),
                    (Cm_rule.Value.Int _ | Cm_rule.Value.Float _) ->
                    Float.abs
                      (Cm_rule.Value.to_float new_value
                      -. Cm_rule.Value.to_float old_value)
                    > threshold *. Cm_rule.Value.to_float old_value
                  | _ -> true),
              Some (Interface.relative_change_condition ~threshold) )
        in
        {
          Tr_relational.table = n.Cmrid.n_table;
          column = n.Cmrid.n_column;
          key_column = n.Cmrid.n_key;
          send = n.Cmrid.n_send;
          filter;
          filter_expr;
        })
      item.Cmrid.i_notify
  in
  {
    Tr_relational.base = item.Cmrid.i_base;
    params = item.Cmrid.i_params;
    read_sql = item.Cmrid.i_read;
    write_sql = item.Cmrid.i_write;
    delete_sql = item.Cmrid.i_delete;
    notify;
    no_spontaneous = item.Cmrid.i_no_spontaneous;
    periodic = None;
  }

let kvfile_binding (item : Cmrid.item_decl) =
  match item.Cmrid.i_key_template with
  | None -> Error (Printf.sprintf "item %s: kvfile items need a key template" item.Cmrid.i_base)
  | Some key_template ->
    Ok
      {
        Tr_kvfile.base = item.Cmrid.i_base;
        params = item.Cmrid.i_params;
        key_template;
        writable = item.Cmrid.i_writable;
      }

let build ?(config = System.Config.default) cmrid =
  let ( let* ) r f = Result.bind r f in
  let* () =
    (* duplicate item bases across sources are configuration errors *)
    let bases =
      List.concat_map
        (fun s -> List.map (fun i -> i.Cmrid.i_base) s.Cmrid.s_items)
        cmrid.Cmrid.sources
    in
    let dupes =
      List.filter (fun b -> List.length (List.filter (String.equal b) bases) > 1) bases
      |> List.sort_uniq compare
    in
    if dupes = [] then Ok ()
    else Error ("duplicate item bases: " ^ String.concat ", " dupes)
  in
  let locator = Cmrid.locator cmrid in
  let system = System.create ~config locator in
  let shells =
    List.map (fun site -> (site, System.add_shell system ~site)) (Cmrid.sites cmrid)
  in
  let shell_of site = List.assoc site shells in
  let build_source acc decl =
    let* (relational, kvfiles, databases, stores) = acc in
    let site = decl.Cmrid.s_site in
    let shell = shell_of site in
    let emit = Shell.emitter_for shell ~site in
    let report kind = Shell.report_failure shell kind in
    match decl.Cmrid.s_kind with
    | Cmrid.Relational ->
      let db = Db.create () in
      let* () =
        List.fold_left
          (fun acc stmt ->
            let* () = acc in
            match Db.exec db stmt with
            | Ok _ -> Ok ()
            | Error e ->
              Error (Printf.sprintf "site %s init failed: %s" site (Db.error_to_string e)))
          (Ok ()) decl.Cmrid.s_init
      in
      let latencies = latencies_of decl in
      let* tr =
        match
          Tr_relational.create ~sim:(System.sim system) ~db ~site ~emit ~report
            ~latencies ~deltas:(deltas_of decl latencies)
            (List.map relational_binding decl.Cmrid.s_items)
        with
        | tr -> Ok tr
        | exception Invalid_argument m -> Error m
      in
      System.register_translator system ~shell (Tr_relational.cmi tr);
      Ok ((site, tr) :: relational, kvfiles, (site, db) :: databases, stores)
    | Cmrid.Kvfile ->
      let fs = Cm_sources.Kvfile.create () in
      let* bindings =
        List.fold_left
          (fun acc item ->
            let* bs = acc in
            let* b = kvfile_binding item in
            Ok (b :: bs))
          (Ok []) decl.Cmrid.s_items
      in
      let latency = op_value decl.Cmrid.s_latencies Cmrid.Read_op ~default:0.1 in
      let delta = op_value decl.Cmrid.s_deltas Cmrid.Read_op ~default:(latency *. 5.0) in
      let* tr =
        match
          Tr_kvfile.create ~sim:(System.sim system) ~fs ~site ~emit ~report ~latency
            ~delta (List.rev bindings)
        with
        | tr -> Ok tr
        | exception Invalid_argument m -> Error m
      in
      System.register_translator system ~shell (Tr_kvfile.cmi tr);
      Ok (relational, (site, tr) :: kvfiles, databases, (site, fs) :: stores)
  in
  let* relational, kvfiles, databases, stores =
    List.fold_left build_source (Ok ([], [], [], [])) cmrid.Cmrid.sources
  in
  (* Install the strategy specification declared in the configuration. *)
  let* () =
    match cmrid.Cmrid.rules with
    | [] -> Ok ()
    | decls -> (
      let lines = List.map (fun (d : Cmrid.rule_decl) -> d.Cmrid.r_text) decls in
      match Cm_rule.Parser.parse_rules (String.concat "\n" lines) with
      | exception Cm_rule.Parser.Parse_error { message; _ } ->
        Error ("strategy rules: " ^ message)
      | rules -> (
        match
          System.install system
            {
              Strategy.strategy_name = "configured";
              description = "strategy specification from the CM-RID file";
              rules;
              aux_init = [];
            }
        with
        | () -> Ok ()
        | exception Invalid_argument m -> Error m))
  in
  Ok
    {
      system;
      shells;
      relational = List.rev relational;
      kvfiles = List.rev kvfiles;
      databases = List.rev databases;
      stores = List.rev stores;
    }

let interface_summary built =
  let by_base = Hashtbl.create 16 in
  List.iter
    (fun rule ->
      match Interface.classify rule, Cm_rule.Template.item_base rule.Cm_rule.Rule.lhs with
      | Some kind, Some base ->
        let prior = Option.value (Hashtbl.find_opt by_base base) ~default:[] in
        let name = Interface.kind_to_string kind in
        if not (List.mem name prior) then Hashtbl.replace by_base base (prior @ [ name ])
      | _ -> (
        (* P-triggered interfaces carry the item on the RHS. *)
        match Interface.classify rule with
        | Some kind ->
          let bases =
            List.filter_map
              (fun (s : Cm_rule.Rule.step) -> Cm_rule.Template.item_base s.template)
              (Cm_rule.Rule.rhs_steps rule)
          in
          List.iter
            (fun base ->
              let prior = Option.value (Hashtbl.find_opt by_base base) ~default:[] in
              let name = Interface.kind_to_string kind in
              if not (List.mem name prior) then
                Hashtbl.replace by_base base (prior @ [ name ]))
            bases
        | None -> ()))
    (System.interface_rules built.system);
  Hashtbl.fold (fun base kinds acc -> (base, kinds) :: acc) by_base []
  |> List.sort compare
