open Cm_rule
module Sim = Cm_sim.Sim

(* Value-keyed hash tables must agree with Value.equal, which compares
   numerics by magnitude (Int 3 = Float 3.0) — normalize before
   hashing so both land in the same bucket. *)
module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal

  let hash v =
    Hashtbl.hash
      (match v with Value.Int n -> Value.Float (float_of_int n) | v -> v)
end)

module Itbl = Hashtbl.Make (struct
  type t = Item.t

  let equal = Item.equal
  let hash = Item.hash
end)

type verdict = { v_holds : bool; v_points : int; v_violations : int }

type violation = { vi_at : float; vi_guarantee : Guarantee.t; vi_detail : string }

(* --- per-item streaming state --- *)

(* Mirror of Timeline.values_taken's dedup: a present value is a take iff
   it differs from the last value of the deduplicated take sequence —
   which a DEL does *not* reset (delete + re-insert of the same value is
   one take, exactly as in the fold's view). *)
type track = { mutable cur : Value.t option; mutable last_taken : Value.t option }

let fresh_track () = { cur = None; last_taken = None }

let track_change tr v =
  match v with
  | None ->
    tr.cur <- None;
    None
  | Some nv -> (
    tr.cur <- Some nv;
    match tr.last_taken with
    | Some lv when Value.equal lv nv -> None
    | _ ->
      tr.last_taken <- Some nv;
      Some nv)

(* Mirror of Guarantee.intervals, kept incrementally and pruned to the κ
   window.  Adjacent same-value raw entries are merged: for the metric
   predicate (∃ interval v: start ≤ t1 ∧ stop > t1 − κ) splitting an
   interval at an interior point is equivalence-preserving, so only real
   value changes create boundaries — state is O(distinct values within
   the window), not O(writes). *)
type window = {
  wd_kappa : float;
  mutable wd_open : (float * Value.t) option;  (* start, value *)
  mutable wd_closed : (float * float * Value.t) list;  (* newest first *)
}

let fresh_window kappa = { wd_kappa = kappa; wd_open = None; wd_closed = [] }

let window_change w ~time v =
  match w.wd_open, v with
  | Some (_, ov), Some nv when Value.equal ov nv -> ()
  | Some (s, ov), Some nv ->
    w.wd_closed <- (s, time, ov) :: w.wd_closed;
    w.wd_open <- Some (time, nv)
  | Some (s, ov), None ->
    w.wd_closed <- (s, time, ov) :: w.wd_closed;
    w.wd_open <- None
  | None, Some nv -> w.wd_open <- Some (time, nv)
  | None, None -> ()

let window_prune w ~now =
  (* Safe because obligations are only ever evaluated at the current
     instant: an interval with stop ≤ now − κ can satisfy no obligation
     at t1 ≥ now either. *)
  let cutoff = now -. w.wd_kappa in
  w.wd_closed <- List.filter (fun (_, stop, _) -> stop > cutoff) w.wd_closed

let window_holds w ~at v =
  (match w.wd_open with
  | Some (s, ov) -> s <= at && Value.equal ov v
  | None -> false)
  || List.exists
       (fun (s, stop, ov) -> Value.equal ov v && s <= at && stop > at -. w.wd_kappa)
       w.wd_closed

(* --- per-guarantee state machines --- *)

type form =
  | F_follows of unit Vtbl.t  (* values the leader has held *)
  | F_leads of { mutable pending : (float * Value.t) list (* newest first *) }
  | F_strictly of {
      remaining : Value.t Queue.t;  (* unconsumed leader takes, in order *)
      pend : (float * Value.t) Queue.t;  (* follower takes awaiting a match *)
    }
  | F_metric of window
  | F_leq

type watcher = {
  w_g : Guarantee.t;
  w_left : Item.t;  (* leader / smaller *)
  w_right : Item.t;  (* follower / larger *)
  w_lt : track;
  w_rt : track;
  w_form : form;
  w_ignore_after : float option;  (* Leads only *)
  w_labels : (string * string) list;
  mutable w_points : int;
  mutable w_bad : int;
  (* per-batch buffers *)
  mutable w_touched : bool;
  mutable w_left_takes : (float * Value.t) list;  (* rev order *)
  mutable w_right_takes : (float * Value.t) list;  (* rev order *)
  mutable w_down : bool;
      (* homed at a crashed site: volatile state wiped, live feed
         suspended until {!relearn} rebuilds it from the journal *)
}

type handle = watcher

(* --- copy families and live staleness --- *)

type stale_state = {
  ss_window : window;
  ss_track : track;  (* the copy's current value *)
  mutable ss_stale : bool;
}

type instance = {
  in_watchers : watcher list;  (* §3.3.1 order *)
  in_stale : stale_state option;
  mutable in_touched : bool;
  mutable in_down : bool;  (* mirrors its watchers' [w_down] *)
}

type family = {
  fa_source : string;
  fa_target : string;
  fa_kappa : float option;
  fa_instances : (string, instance) Hashtbl.t;  (* by param key *)
  mutable fa_order : string list;  (* rev insertion order *)
  mutable fa_stale : bool;  (* aggregate over instances *)
}

(* A raw item-state change, resolved against the monitor's own state
   table only when its batch applies — an INS in the same instant as a
   write or delete must see its same-instant predecessors. *)
type change = Cset of Value.t | Cins | Cdel

type t = {
  sim : Sim.t option;
  obs : Obs.t;
  tick : float;
  mutable watchers : watcher list;  (* rev registration order *)
  by_item : watcher list ref Itbl.t;
  watched_bases : (string, unit) Hashtbl.t;
      (* bases of every watched item and copy family — the feed path's
         one-lookup reject for events on items no watcher cares about *)
  base_filter : Bytes.t;
      (* 256-slot bitmap over the last byte of every watched base: one
         array load rejects most unwatched bases before the hash lookup
         above ever touches the table.  Monotone — bits are set on
         registration and never cleared, so a miss here is definitive
         while a hit merely falls through to [watched_bases]. *)
  state : Value.t option Itbl.t;  (* current value of every watched item *)
  mutable leqs : watcher list;  (* rev order; evaluated at every batch *)
  by_base : (string, family list ref) Hashtbl.t;
  mutable families : family list;  (* rev declaration order *)
  mutable batch_time : float;
  mutable batch : (Item.t * change) list;  (* rev order *)
  mutable have_batch : bool;
  mutable did_zero : bool;  (* always-leq sampled the 0.0 point *)
  mutable touched : watcher list;
  mutable touched_instances : (family * instance) list;
  mutable viol_subs : (violation -> unit) list;
  mutable stale_subs :
    (source:string -> target:string -> at:float -> stale:bool -> unit) list;
  mutable finalized : bool;
  mutable ticking : bool;
  mutable wiped_families : family list;  (* families with down instances *)
}

let create ?sim ?(obs = Obs.noop) ?(tick = 1.0) () =
  {
    sim;
    obs;
    tick;
    watchers = [];
    by_item = Itbl.create 64;
    watched_bases = Hashtbl.create 16;
    base_filter = Bytes.make 256 '\000';
    state = Itbl.create 64;
    leqs = [];
    by_base = Hashtbl.create 16;
    families = [];
    batch_time = 0.0;
    batch = [];
    have_batch = false;
    did_zero = false;
    touched = [];
    touched_instances = [];
    viol_subs = [];
    stale_subs = [];
    finalized = false;
    ticking = false;
    wiped_families = [];
  }

let now_of t = match t.sim with Some sim -> Sim.now sim | None -> t.batch_time

let on_violation t f = t.viol_subs <- t.viol_subs @ [ f ]
let on_staleness t f = t.stale_subs <- t.stale_subs @ [ f ]

let supported = function
  | Guarantee.Follows _ | Guarantee.Leads _ | Guarantee.Strictly_follows _
  | Guarantee.Metric_follows _ | Guarantee.Always_leq _ ->
    true
  | Guarantee.Exists_within _ | Guarantee.Monitor_window _ | Guarantee.Periodic_equal _
    ->
    false

let violate t w ~at detail =
  w.w_bad <- w.w_bad + 1;
  if Obs.enabled t.obs then begin
    Obs.incr t.obs "monitor_violations" ~labels:w.w_labels;
    Obs.gauge t.obs "monitor_holds" ~labels:w.w_labels 0.0
  end;
  let v = { vi_at = at; vi_guarantee = w.w_g; vi_detail = detail } in
  List.iter (fun f -> f v) t.viol_subs

let admit_base t base =
  Hashtbl.replace t.watched_bases base ();
  if String.length base > 0 then
    Bytes.set t.base_filter
      (Char.code (String.unsafe_get base (String.length base - 1)))
      '\001'

let register_item t item w =
  admit_base t item.Item.base;
  match Itbl.find_opt t.by_item item with
  | Some bucket -> bucket := w :: !bucket
  | None -> Itbl.replace t.by_item item (ref [ w ])

let make_watcher t ?ignore_after g =
  let left, right, form =
    match g with
    | Guarantee.Follows { leader; follower } -> leader, follower, F_follows (Vtbl.create 16)
    | Guarantee.Leads { leader; follower } -> leader, follower, F_leads { pending = [] }
    | Guarantee.Strictly_follows { leader; follower } ->
      leader, follower, F_strictly { remaining = Queue.create (); pend = Queue.create () }
    | Guarantee.Metric_follows ({ leader; follower }, kappa) ->
      leader, follower, F_metric (fresh_window kappa)
    | Guarantee.Always_leq { smaller; larger } -> smaller, larger, F_leq
    | g ->
      invalid_arg
        (Printf.sprintf "Monitor.watch: %s is not an online-checkable form"
           (Guarantee.name g))
  in
  let w =
    {
      w_g = g;
      w_left = left;
      w_right = right;
      w_lt = fresh_track ();
      w_rt = fresh_track ();
      w_form = form;
      w_ignore_after = ignore_after;
      w_labels =
        [ ("guarantee", Guarantee.name g);
          ("left", Item.to_string left);
          ("right", Item.to_string right) ];
      w_points = 0;
      w_bad = 0;
      w_touched = false;
      w_left_takes = [];
      w_right_takes = [];
      w_down = false;
    }
  in
  t.watchers <- w :: t.watchers;
  (match form with
  | F_leq -> t.leqs <- w :: t.leqs
  | _ -> ());
  register_item t left w;
  if not (Item.equal left right) then register_item t right w;
  if Obs.enabled t.obs then Obs.gauge t.obs "monitor_holds" ~labels:w.w_labels 1.0;
  w

let watch ?ignore_after t g = make_watcher t ?ignore_after g

(* --- obligation evaluation (stage 2 of a batch) --- *)

let seek_consume q y =
  (* Fold's [seek]: find the first occurrence of [y] in the queue; on a
     hit consume through it, on a miss leave the queue untouched. *)
  let idx = ref (-1) in
  let i = ref 0 in
  Queue.iter
    (fun x ->
      if !idx < 0 && Value.equal x y then idx := !i;
      incr i)
    q;
  if !idx < 0 then false
  else begin
    for _ = 0 to !idx do
      ignore (Queue.pop q)
    done;
    true
  end

let eval_leq t w ~at =
  match w.w_lt.cur, w.w_rt.cur with
  | Some a, Some b ->
    w.w_points <- w.w_points + 1;
    if not (Value.compare a b <= 0) then
      violate t w ~at
        (Printf.sprintf "at %.3f: %s = %s > %s = %s" at (Item.to_string w.w_left)
           (Value.to_string a) (Item.to_string w.w_right) (Value.to_string b))
  | _ -> ()

let flush_watcher t w ~at =
  w.w_touched <- false;
  let left_takes = List.rev w.w_left_takes in
  let right_takes = List.rev w.w_right_takes in
  w.w_left_takes <- [];
  w.w_right_takes <- [];
  (match w.w_form with
  | F_follows seen ->
    List.iter
      (fun (t1, y) ->
        w.w_points <- w.w_points + 1;
        if not (Vtbl.mem seen y) then
          violate t w ~at
            (Printf.sprintf "%s = %s at %.3f but %s never held it before"
               (Item.to_string w.w_right) (Value.to_string y) t1
               (Item.to_string w.w_left)))
      right_takes
  | F_metric window ->
    window_prune window ~now:at;
    List.iter
      (fun (t1, y) ->
        w.w_points <- w.w_points + 1;
        if not (window_holds window ~at:t1 y) then
          violate t w ~at
            (Printf.sprintf "%s = %s at %.3f but %s did not hold it within the last %gs"
               (Item.to_string w.w_right) (Value.to_string y) t1
               (Item.to_string w.w_left) window.wd_kappa))
      right_takes
  | F_leads st ->
    List.iter
      (fun (t1, x) ->
        let in_scope =
          match w.w_ignore_after with None -> true | Some ia -> t1 <= ia
        in
        if in_scope then begin
          w.w_points <- w.w_points + 1;
          st.pending <- (t1, x) :: st.pending
        end)
      left_takes;
    if Obs.enabled t.obs then
      Obs.gauge t.obs "monitor_leads_pending" ~labels:w.w_labels
        (float_of_int (List.length st.pending))
  | F_strictly st ->
    List.iter
      (fun (t1, y) ->
        w.w_points <- w.w_points + 1;
        Queue.add (t1, y) st.pend)
      right_takes;
    (* Resolve eagerly from the head: earlier waiting takes always match
       before later ones can consume leader occurrences (the fold's
       embed is strictly left-to-right); a head with no match yet may
       still be satisfied by a future leader take, so it blocks. *)
    let continue = ref true in
    while !continue && not (Queue.is_empty st.pend) do
      let _, y = Queue.peek st.pend in
      if seek_consume st.remaining y then ignore (Queue.pop st.pend)
      else continue := false
    done
  | F_leq -> ())

(* --- staleness --- *)

let eval_stale ss ~now =
  match ss.ss_track.cur with
  | None -> false
  | Some v ->
    window_prune ss.ss_window ~now;
    not (window_holds ss.ss_window ~at:now v)

let refresh_family t fa ~now =
  let stale = ref false in
  Hashtbl.iter
    (fun _ inst ->
      match inst.in_stale with
      | None -> ()
      | Some ss ->
        (* A down instance's verdict is frozen at its pre-crash value
           until the journal relearn rebuilds the window. *)
        if not inst.in_down then ss.ss_stale <- eval_stale ss ~now;
        if ss.ss_stale then stale := true)
    fa.fa_instances;
  if !stale <> fa.fa_stale then begin
    fa.fa_stale <- !stale;
    if Obs.enabled t.obs then begin
      let labels = [ ("source", fa.fa_source); ("target", fa.fa_target) ] in
      Obs.gauge t.obs "monitor_stale" ~labels (if !stale then 1.0 else 0.0);
      if !stale then Obs.incr t.obs "monitor_stale_transitions" ~labels
    end;
    List.iter
      (fun f -> f ~source:fa.fa_source ~target:fa.fa_target ~at:now ~stale:!stale)
      t.stale_subs
  end

let refresh_instance t fa inst ~now =
  inst.in_touched <- false;
  (match inst.in_stale with
  | None -> ()
  | Some ss -> ss.ss_stale <- eval_stale ss ~now);
  (* Aggregate over the whole family, so one instance going fresh does
     not mask another still stale. *)
  let stale =
    Hashtbl.fold
      (fun _ i acc ->
        acc || match i.in_stale with Some ss -> ss.ss_stale | None -> false)
      fa.fa_instances false
  in
  if stale <> fa.fa_stale then begin
    fa.fa_stale <- stale;
    if Obs.enabled t.obs then begin
      let labels = [ ("source", fa.fa_source); ("target", fa.fa_target) ] in
      Obs.gauge t.obs "monitor_stale" ~labels (if stale then 1.0 else 0.0);
      if stale then Obs.incr t.obs "monitor_stale_transitions" ~labels
    end;
    List.iter
      (fun f -> f ~source:fa.fa_source ~target:fa.fa_target ~at:now ~stale)
      t.stale_subs
  end

(* --- the batch engine --- *)

let flush t =
  if t.have_batch then begin
    let at = t.batch_time in
    let entries = List.rev t.batch in
    t.batch <- [];
    t.have_batch <- false;
    (* The fold samples always-leq at 0.0 even when nothing changed
       there: take that sample from the pre-batch state (= the state at
       time 0) before the first later-timed batch applies. *)
    if (not t.did_zero) && at > 0.0 && t.leqs <> [] then begin
      t.did_zero <- true;
      List.iter (fun w -> eval_leq t w ~at:0.0) t.leqs
    end;
    if at = 0.0 then t.did_zero <- true;
    (* Stage 1: apply every state update of the instant. *)
    List.iter
      (fun (item, change) ->
        let v =
          match change with
          | Cset v -> Some v
          | Cdel -> None
          | Cins ->
            (* INS preserves a value only if the item currently exists —
               the Timeline.of_trace convention. *)
            Some
              (Option.value
                 (Option.join (Itbl.find_opt t.state item))
                 ~default:Value.Null)
        in
        if Itbl.mem t.by_item item then Itbl.replace t.state item v;
        (match Itbl.find_opt t.by_item item with
        | None -> ()
        | Some bucket ->
          List.iter
            (fun w ->
              if w.w_down then ()  (* crashed site: its monitor is dead;
                                      the journal relearn catches it up *)
              else begin
              if not w.w_touched then begin
                w.w_touched <- true;
                t.touched <- w :: t.touched
              end;
              if Item.equal item w.w_left then begin
                (match w.w_form with
                | F_follows seen -> (
                  match v with Some nv -> Vtbl.replace seen nv () | None -> ())
                | F_metric window -> window_change window ~time:at v
                | _ -> ());
                match track_change w.w_lt v with
                | Some taken -> (
                  match w.w_form with
                  | F_leads _ -> w.w_left_takes <- (at, taken) :: w.w_left_takes
                  | F_strictly st -> Queue.add taken st.remaining
                  | _ -> ())
                | None -> ()
              end;
              if Item.equal item w.w_right then begin
                (* Leads: a follower interval closing at [at] discharges
                   every pending take strictly before it (the fold's
                   [stop > t1]).  Same-value rewrites extend the
                   interval instead — equivalent for the final verdict,
                   since the merged interval closes later still. *)
                (match w.w_form with
                | F_leads st -> (
                  match w.w_rt.cur, v with
                  | Some ov, Some nv when Value.equal ov nv -> ()
                  | Some ov, _ ->
                    st.pending <-
                      List.filter
                        (fun (t1, x) -> not (Value.equal x ov && t1 < at))
                        st.pending
                  | None, _ -> ())
                | _ -> ());
                match track_change w.w_rt v with
                | Some taken -> w.w_right_takes <- (at, taken) :: w.w_right_takes
                | None -> ()
              end
              end)
            !bucket);
        match Hashtbl.find_opt t.by_base item.Item.base with
        | None -> ()
        | Some fams ->
          List.iter
            (fun fa ->
              match
                Hashtbl.find_opt fa.fa_instances
                  (String.concat "," (List.map Value.to_string item.Item.params))
              with
              | None -> ()
              | Some inst when inst.in_down -> ()
              | Some inst -> (
                if not inst.in_touched then begin
                  inst.in_touched <- true;
                  t.touched_instances <- (fa, inst) :: t.touched_instances
                end;
                match inst.in_stale with
                | None -> ()
                | Some ss ->
                  if String.equal item.Item.base fa.fa_source then
                    window_change ss.ss_window ~time:at v;
                  if String.equal item.Item.base fa.fa_target then
                    ignore (track_change ss.ss_track v)))
            !fams)
      entries;
    (* Stage 2: evaluate the instant's obligations against the settled
       state — intra-instant event order must not matter, as it does not
       for the fold. *)
    List.iter
      (fun w -> if not w.w_down then flush_watcher t w ~at)
      (List.rev t.touched);
    t.touched <- [];
    List.iter (fun w -> if not w.w_down then eval_leq t w ~at) t.leqs;
    List.iter
      (fun (fa, inst) -> refresh_instance t fa inst ~now:at)
      (List.rev t.touched_instances);
    t.touched_instances <- []
  end

(* Create family instances lazily at an item's first event; the new
   watchers join [by_item] before the entry is applied, so they see it. *)
let ensure_instances t item =
  match Hashtbl.find_opt t.by_base item.Item.base with
  | None -> ()
  | Some fams ->
    List.iter
      (fun fa ->
        let key = String.concat "," (List.map Value.to_string item.Item.params) in
        if not (Hashtbl.mem fa.fa_instances key) then begin
          let source = Item.make fa.fa_source ~params:item.Item.params in
          let target = Item.make fa.fa_target ~params:item.Item.params in
          let pair = { Guarantee.leader = source; follower = target } in
          let forms =
            [ Guarantee.Follows pair; Guarantee.Leads pair;
              Guarantee.Strictly_follows pair ]
            @
            match fa.fa_kappa with
            | Some kappa -> [ Guarantee.Metric_follows (pair, kappa) ]
            | None -> []
          in
          let watchers = List.map (fun g -> make_watcher t g) forms in
          let stale =
            Option.map
              (fun kappa ->
                { ss_window = fresh_window kappa;
                  ss_track = fresh_track ();
                  ss_stale = false })
              fa.fa_kappa
          in
          Hashtbl.replace fa.fa_instances key
            { in_watchers = watchers; in_stale = stale; in_touched = false;
              in_down = false };
          fa.fa_order <- key :: fa.fa_order
        end)
      !fams

let push_change t ~time item change =
  if t.finalized then invalid_arg "Monitor: feed after finalize";
  if time < t.batch_time then
    invalid_arg
      (Printf.sprintf "Monitor: event at %g precedes batch at %g" time t.batch_time);
  if t.have_batch && time > t.batch_time then flush t;
  t.batch_time <- time;
  t.have_batch <- true;
  t.batch <- (item, change) :: t.batch

(* An unwatched item still marks an always-leq sample point (the fold
   samples at every global change time), but otherwise costs one
   base-string lookup: with no leq watchers, events on bases no watcher
   or family cares about are rejected without touching the item tables,
   spawning family instances, or allocating the change. *)
(* The bitmap probe costs one load where the hash lookup costs a string
   hash plus a chain walk through cold table nodes; with distinct last
   bytes it rejects without ever touching [watched_bases]. *)
let base_maybe_watched t base =
  let n = String.length base in
  n = 0
  || Bytes.unsafe_get t.base_filter (Char.code (String.unsafe_get base (n - 1)))
     <> '\000'

let admitted t item =
  if
    base_maybe_watched t item.Item.base
    && Hashtbl.mem t.watched_bases item.Item.base
  then begin
    ensure_instances t item;
    Itbl.mem t.by_item item || t.leqs <> []
  end
  else t.leqs <> []

let feed t (e : Event.t) =
  (* Cheap reject first: most events (N, RR, fires, chains) change no
     item state and must cost almost nothing with monitors on.  The
     state-changing shapes mirror [Event.written_value] plus INS/DEL —
     the [Timeline.of_trace] vocabulary. *)
  match e.Event.desc.Event.name, e.Event.desc.Event.args with
  | "W", [ Event.Ai item; Event.Av v ] | "Ws", [ Event.Ai item; _; Event.Av v ]
    ->
    if admitted t item then push_change t ~time:e.Event.time item (Cset v)
  | "INS", [ Event.Ai item ] ->
    if admitted t item then push_change t ~time:e.Event.time item Cins
  | "DEL", [ Event.Ai item ] ->
    if admitted t item then push_change t ~time:e.Event.time item Cdel
  | _ -> ()

let note_initial t bindings =
  List.iter
    (fun (item, v) ->
      ensure_instances t item;
      push_change t ~time:0.0 item (Cset v))
    bindings

let attach t trace = Trace.on_record trace (fun e -> feed t e)

(* --- staleness public face --- *)

let find_family t ~source ~target =
  List.find_opt
    (fun fa -> String.equal fa.fa_source source && String.equal fa.fa_target target)
    t.families

let sync_to_now t =
  (* A completed batch strictly before the current instant must apply
     before staleness is read; an in-progress batch at the current
     instant stays open (its obligations evaluate when it completes). *)
  let now = now_of t in
  if t.have_batch && t.batch_time < now then flush t;
  now

let copy_stale t ~source ~target =
  match find_family t ~source ~target with
  | None -> false
  | Some fa ->
    ignore (sync_to_now t);
    fa.fa_stale

let force_refresh t ~source ~target =
  match find_family t ~source ~target with
  | None -> false
  | Some fa ->
    let now = sync_to_now t in
    Obs.incr t.obs "monitor_forced_refreshes"
      ~labels:[ ("source", source); ("target", target) ];
    refresh_family t fa ~now;
    fa.fa_stale

let start_tick t =
  match t.sim with
  | Some sim when not t.ticking ->
    t.ticking <- true;
    Sim.every sim ~period:t.tick
      (fun () ->
        let now = sync_to_now t in
        List.iter (fun fa -> refresh_family t fa ~now) (List.rev t.families))
      ~cancel:(fun () -> t.finalized)
  | _ -> ()

let watch_copy t ~source ~target ~kappa =
  match find_family t ~source ~target with
  | Some _ -> ()
  | None ->
    let fa =
      {
        fa_source = source;
        fa_target = target;
        fa_kappa = kappa;
        fa_instances = Hashtbl.create 8;
        fa_order = [];
        fa_stale = false;
      }
    in
    t.families <- fa :: t.families;
    let add base =
      (* Family instances spawn lazily, so the feed path's base-level
         reject must admit these bases before any instance exists. *)
      admit_base t base;
      match Hashtbl.find_opt t.by_base base with
      | Some bucket -> bucket := fa :: !bucket
      | None -> Hashtbl.replace t.by_base base (ref [ fa ])
    in
    add source;
    if not (String.equal source target) then add target;
    start_tick t

let watched_copies t =
  List.rev_map (fun fa -> (fa.fa_source, fa.fa_target)) t.families

(* --- crash recovery: volatile wipe + journal-backed relearn ---

   A site's monitor runs at the site: its watcher state is volatile and
   dies with a crash.  [crash_wipe] models the loss — every watcher
   whose monitored (right-hand) item lives at the crashed site loses its
   tracks, value sets, pending obligations and κ windows, and stops
   consuming the live feed.  [relearn] is the §5 recovery step: the
   journaled event history is replayed through the wiped watchers'
   state machines only — silently, without re-evaluating obligations
   (those instants were checked in the previous life; re-learning must
   rebuild knowledge, not re-report or double-count) — after which the
   live feed resumes.  An obligation that was pending at the crash
   (e.g. a leads take the follower had not yet reflected) is thereby
   restored and still fails at finalize if never discharged: a crash
   between a violation and its detection does not bury it. *)

let wipe_watcher w =
  w.w_lt.cur <- None;
  w.w_lt.last_taken <- None;
  w.w_rt.cur <- None;
  w.w_rt.last_taken <- None;
  w.w_left_takes <- [];
  w.w_right_takes <- [];
  (match w.w_form with
  | F_follows seen -> Vtbl.reset seen
  | F_leads st -> st.pending <- []
  | F_strictly st ->
    Queue.clear st.remaining;
    Queue.clear st.pend
  | F_metric wd ->
    wd.wd_open <- None;
    wd.wd_closed <- []
  | F_leq -> ());
  w.w_down <- true

let crash_wipe t ~owns =
  let n = ref 0 in
  List.iter
    (fun w ->
      if (not w.w_down) && owns w.w_right then begin
        wipe_watcher w;
        incr n
      end)
    t.watchers;
  List.iter
    (fun fa ->
      let touched = ref false in
      Hashtbl.iter
        (fun _ inst ->
          if
            (not inst.in_down)
            && List.exists (fun w -> w.w_down) inst.in_watchers
          then begin
            touched := true;
            inst.in_down <- true;
            match inst.in_stale with
            | Some ss ->
              ss.ss_window.wd_open <- None;
              ss.ss_window.wd_closed <- [];
              ss.ss_track.cur <- None;
              ss.ss_track.last_taken <- None
            | None -> ()
          end)
        fa.fa_instances;
      if !touched && not (List.memq fa t.wiped_families) then
        t.wiped_families <- fa :: t.wiped_families)
    t.families;
  !n

(* The silent counterpart of [flush_watcher]: takes move into the
   obligation state (leads pending, strictly queues) with no points, no
   violations, no gauges. *)
let relearn_flush w =
  let left_takes = List.rev w.w_left_takes in
  let right_takes = List.rev w.w_right_takes in
  w.w_left_takes <- [];
  w.w_right_takes <- [];
  match w.w_form with
  | F_leads st ->
    List.iter
      (fun (t1, x) ->
        let in_scope =
          match w.w_ignore_after with None -> true | Some ia -> t1 <= ia
        in
        if in_scope then st.pending <- (t1, x) :: st.pending)
      left_takes
  | F_strictly st ->
    List.iter (fun (t1, y) -> Queue.add (t1, y) st.pend) right_takes;
    let continue = ref true in
    while !continue && not (Queue.is_empty st.pend) do
      let _, y = Queue.peek st.pend in
      if seek_consume st.remaining y then ignore (Queue.pop st.pend)
      else continue := false
    done
  | F_follows _ | F_metric _ | F_leq -> ()

(* Stage-1 state update for one historical change, applied to down
   watchers only.  Mirrors [flush]'s update logic; the shared [state]
   table is deliberately untouched (it reflects the live feed, which
   never stopped). *)
let relearn_apply t ~at (item, change) =
  let v =
    match change with
    | Cset v -> Some v
    | Cdel -> None
    | Cins ->
      Some
        (Option.value (Option.join (Itbl.find_opt t.state item)) ~default:Value.Null)
  in
  (match Itbl.find_opt t.by_item item with
  | None -> ()
  | Some bucket ->
    List.iter
      (fun w ->
        if w.w_down then begin
          if Item.equal item w.w_left then begin
            (match w.w_form with
            | F_follows seen -> (
              match v with Some nv -> Vtbl.replace seen nv () | None -> ())
            | F_metric window -> window_change window ~time:at v
            | _ -> ());
            match track_change w.w_lt v with
            | Some taken -> (
              match w.w_form with
              | F_leads _ -> w.w_left_takes <- (at, taken) :: w.w_left_takes
              | F_strictly st -> Queue.add taken st.remaining
              | _ -> ())
            | None -> ()
          end;
          if Item.equal item w.w_right then begin
            (match w.w_form with
            | F_leads st -> (
              match w.w_rt.cur, v with
              | Some ov, Some nv when Value.equal ov nv -> ()
              | Some ov, _ ->
                st.pending <-
                  List.filter
                    (fun (t1, x) -> not (Value.equal x ov && t1 < at))
                    st.pending
              | None, _ -> ())
            | _ -> ());
            match track_change w.w_rt v with
            | Some taken -> w.w_right_takes <- (at, taken) :: w.w_right_takes
            | None -> ()
          end
        end)
      !bucket);
  match Hashtbl.find_opt t.by_base item.Item.base with
  | None -> ()
  | Some fams ->
    List.iter
      (fun fa ->
        if List.memq fa t.wiped_families then
          match
            Hashtbl.find_opt fa.fa_instances
              (String.concat "," (List.map Value.to_string item.Item.params))
          with
          | Some ({ in_stale = Some ss; _ } as inst) when inst.in_down ->
            if String.equal item.Item.base fa.fa_source then
              window_change ss.ss_window ~time:at v;
            if String.equal item.Item.base fa.fa_target then
              ignore (track_change ss.ss_track v)
          | _ -> ())
      !fams

let relearn t events =
  if t.finalized then invalid_arg "Monitor.relearn: already finalized";
  let down = List.filter (fun w -> w.w_down) t.watchers in
  if down <> [] then begin
    let events =
      List.stable_sort
        (fun (a : Event.t) (b : Event.t) -> Float.compare a.time b.time)
        events
    in
    (* Per-instant micro-batches, like the live feed. *)
    let pending = ref [] in
    let pending_at = ref 0.0 in
    let flush_pending () =
      if !pending <> [] then begin
        List.iter (relearn_apply t ~at:!pending_at) (List.rev !pending);
        List.iter relearn_flush down;
        pending := []
      end
    in
    List.iter
      (fun (e : Event.t) ->
        match e.desc.Event.name, e.desc.Event.args with
        | "W", [ Event.Ai item; Event.Av v ]
        | "Ws", [ Event.Ai item; _; Event.Av v ] ->
          if e.time > !pending_at then flush_pending ();
          pending_at := e.time;
          pending := (item, Cset v) :: !pending
        | "INS", [ Event.Ai item ] ->
          if e.time > !pending_at then flush_pending ();
          pending_at := e.time;
          pending := (item, Cins) :: !pending
        | "DEL", [ Event.Ai item ] ->
          if e.time > !pending_at then flush_pending ();
          pending_at := e.time;
          pending := (item, Cdel) :: !pending
        | _ -> ())
      events;
    flush_pending ();
    List.iter (fun w -> w.w_down <- false) down;
    let now = now_of t in
    List.iter
      (fun fa ->
        Hashtbl.iter (fun _ inst -> inst.in_down <- false) fa.fa_instances;
        (* Verdict recomputed from the relearned windows; subscribers
           hear only genuine transitions. *)
        refresh_family t fa ~now)
      (List.rev t.wiped_families);
    t.wiped_families <- []
  end

(* --- finalize: resolve the eventually-properties --- *)

let finalize t ~horizon =
  flush t;
  if not t.finalized then begin
    t.finalized <- true;
    (* The fold samples always-leq at 0.0 even on an empty trace. *)
    if (not t.did_zero) && t.leqs <> [] then begin
      t.did_zero <- true;
      List.iter (fun w -> eval_leq t w ~at:0.0) t.leqs
    end;
    List.iter
      (fun w ->
        match w.w_form with
        | F_leads st ->
          (* The fold's final follower interval stops at the horizon:
             discharge what it covers, fail the rest in take order. *)
          let open_v = w.w_rt.cur in
          let residual =
            List.filter
              (fun (t1, x) ->
                not
                  (match open_v with
                  | Some v -> Value.equal v x && horizon > t1
                  | None -> false))
              (List.rev st.pending)
          in
          st.pending <- List.rev residual;
          List.iter
            (fun (t1, x) ->
              violate t w ~at:horizon
                (Printf.sprintf "%s took %s at %.3f but %s never reflected it"
                   (Item.to_string w.w_left) (Value.to_string x) t1
                   (Item.to_string w.w_right)))
            residual
        | F_strictly st ->
          (* Exactly the fold's embed over the residuals: a failing take
             leaves the remaining leader sequence untouched. *)
          Queue.iter
            (fun (t1, y) ->
              if not (seek_consume st.remaining y) then
                violate t w ~at:horizon
                  (Printf.sprintf "%s = %s at %.3f is out of order w.r.t. %s's history"
                     (Item.to_string w.w_right) (Value.to_string y) t1
                     (Item.to_string w.w_left)))
            st.pend;
          Queue.clear st.pend
        | F_follows _ | F_metric _ | F_leq -> ())
      (List.rev t.watchers)
  end

let verdict w = { v_holds = w.w_bad = 0; v_points = w.w_points; v_violations = w.w_bad }

let handle_guarantee w = w.w_g

let family_verdicts t ~source ~target =
  match find_family t ~source ~target with
  | None -> []
  | Some fa ->
    let keys = List.sort String.compare (List.rev fa.fa_order) in
    List.concat_map
      (fun key ->
        let inst = Hashtbl.find fa.fa_instances key in
        List.map (fun w -> (w.w_g, verdict w)) inst.in_watchers)
      keys
