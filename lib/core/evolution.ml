(* Runtime rule evolution (ISSUE 6): versioned rule epochs with
   drain-and-cutover semantics over a *running* system.

   §4.2.3 of the paper treats an interface change as an offline
   reconfiguration — stop the world, rewrite the rules, restart.  This
   module replaces that with a per-site state machine mirroring the
   reliable layer's incarnation-epoch framing: a proposed program is
   staged (journaled) at every shell, a cutover atomically switches new
   dispatch to it while firings already on the wire keep executing under
   the program that produced them (the old epoch "drains"), and
   retirement ends the drain — stale envelopes are rejected and counted
   from then on, never silently dropped and never re-interpreted under
   the new rules.

   On cutover the Derive prover re-runs over both epochs' programs and
   classifies each §3.3 guarantee of each declared copy constraint as
   kept / upgraded / lost{reason} — the formal residue of the paper's
   "which guarantees survive the change" question, surfaced through Obs
   and `cmtool evolve`. *)

module Sim = Cm_sim.Sim
open Cm_rule

(* -- guarantee survival across one transition -- *)

type survival = Kept | Upgraded | Lost of string | Never of string

type guarantee_survival = {
  gs_name : string;  (* Guarantee.name vocabulary: "(1) follows", ... *)
  gs_before : Derive.verdict;
  gs_after : Derive.verdict;
  gs_survival : survival;
}

type constraint_survival = {
  cs_source : string;
  cs_target : string;
  cs_guarantees : guarantee_survival list;  (* the four §3.3.1 forms *)
}

type transition = {
  tr_from : int;
  tr_to : int;
  tr_at : float;
  tr_strategy : string;
  tr_survivals : constraint_survival list;
}

type rollback = {
  rb_at : float;
  rb_from : int;  (* the regressing epoch, rolled back *)
  rb_to : int;  (* the epoch whose program was restored *)
  rb_via : int;  (* fresh epoch number carrying the restored program *)
  rb_strategy : string;  (* name of the rejected strategy *)
  rb_lost : (string * string * string) list;
}

let classify before after =
  match before, after with
  | Derive.Proved _, Derive.Proved _ -> Kept
  | Derive.Unprovable _, Derive.Proved _ -> Upgraded
  | Derive.Proved _, Derive.Unprovable reason -> Lost reason
  | Derive.Unprovable _, Derive.Unprovable reason -> Never reason

let survival_status = function
  | Kept -> "kept"
  | Upgraded -> "upgraded"
  | Lost _ -> "lost"
  | Never _ -> "never"

let survival_to_string = function
  | Kept -> "kept"
  | Upgraded -> "upgraded"
  | Lost reason -> Printf.sprintf "lost{%s}" reason
  | Never reason -> Printf.sprintf "never{%s}" reason

let compare_programs ~interfaces_before ~interfaces_after ~strategy_before
    ~strategy_after ~constraints =
  List.map
    (fun (source_base, target_base) ->
      let source = Interface.family source_base [ "n" ] in
      let target = Interface.family target_base [ "n" ] in
      let before =
        Derive.copy_guarantees ~interfaces:interfaces_before
          ~strategy:strategy_before ~source ~target
      in
      let after =
        Derive.copy_guarantees ~interfaces:interfaces_after
          ~strategy:strategy_after ~source ~target
      in
      let pick name b a =
        { gs_name = name; gs_before = b; gs_after = a; gs_survival = classify b a }
      in
      {
        cs_source = source_base;
        cs_target = target_base;
        cs_guarantees =
          [
            pick "(1) follows" before.Derive.follows after.Derive.follows;
            pick "(2) leads" before.Derive.leads after.Derive.leads;
            pick "(3) strictly-follows" before.Derive.strictly_follows
              after.Derive.strictly_follows;
            pick "(4) metric-follows" before.Derive.metric_follows
              after.Derive.metric_follows;
          ];
      })
    constraints

(* The incoming epoch's verdicts reassembled as a Derive.report — what
   System's read-side view should hold after the cutover.  cs_guarantees
   is always the four §3.3.1 forms in paper order (compare_programs). *)
let report_after cs =
  match cs.cs_guarantees with
  | [ f; l; s; m ] ->
    {
      Derive.follows = f.gs_after;
      leads = l.gs_after;
      strictly_follows = s.gs_after;
      metric_follows = m.gs_after;
    }
  | _ -> invalid_arg "Evolution.report_after: expected the four §3.3.1 forms"

let kept_names tr =
  List.concat_map
    (fun cs ->
      List.filter_map
        (fun g -> match g.gs_survival with Kept -> Some g.gs_name | _ -> None)
        cs.cs_guarantees)
    tr.tr_survivals

(* -- rendering (shared by cmtool evolve and the pinned goldens) -- *)

let verdict_short = function
  | Derive.Proved { kappa = Some k; _ } -> Printf.sprintf "proved (kappa = %g)" k
  | Derive.Proved _ -> "proved"
  | Derive.Unprovable _ -> "unprovable"

let survivals_to_text css =
  let buf = Buffer.create 256 in
  List.iter
    (fun cs ->
      Buffer.add_string buf
        (Printf.sprintf "guarantee survival: %s copies %s\n" cs.cs_target
           cs.cs_source);
      List.iter
        (fun g ->
          let after =
            match g.gs_survival with
            | Lost reason | Never reason -> "unprovable: " ^ reason
            | Kept | Upgraded -> verdict_short g.gs_after
          in
          Buffer.add_string buf
            (Printf.sprintf "  %-20s %-9s %s -> %s\n" g.gs_name
               (survival_status g.gs_survival)
               (verdict_short g.gs_before) after))
        cs.cs_guarantees)
    css;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let verdict_json_fields prefix = function
  | Derive.Proved { kappa; _ } ->
    Printf.sprintf "\"%s\": \"proved\"" prefix
    ^
    (match kappa with
    | Some k -> Printf.sprintf ", \"%s_kappa\": %g" prefix k
    | None -> "")
  | Derive.Unprovable reason ->
    Printf.sprintf "\"%s\": \"unprovable\", \"%s_reason\": \"%s\"" prefix prefix
      (json_escape reason)

let survivals_to_json css =
  let guarantee g =
    Printf.sprintf "      { \"name\": \"%s\", \"status\": \"%s\", %s, %s }"
      (json_escape g.gs_name)
      (survival_status g.gs_survival)
      (verdict_json_fields "before" g.gs_before)
      (verdict_json_fields "after" g.gs_after)
  in
  let constraint_ cs =
    Printf.sprintf
      "  { \"source\": \"%s\", \"target\": \"%s\",\n    \"guarantees\": [\n%s\n    ] }"
      (json_escape cs.cs_source) (json_escape cs.cs_target)
      (String.concat ",\n" (List.map guarantee cs.cs_guarantees))
  in
  Printf.sprintf "{ \"constraints\": [\n%s\n] }\n"
    (String.concat ",\n" (List.map constraint_ css))

(* -- the runtime manager -- *)

type t = {
  system : System.t;
  constraints : (string * string) list;
  required : (string * string) list;
  interfaces : Rule.t list;
  mutable current_epoch : int;
  mutable current_rules : Rule.t list;
  mutable current_strategy : Strategy.t option;  (* set at each cutover *)
  mutable next_epoch : int;
  mutable proposed : (int * Strategy.t) option;
  mutable draining : int list;  (* ascending *)
  mutable rev_transitions : transition list;  (* newest first *)
  mutable rev_rollbacks : rollback list;  (* newest first *)
  mutable rolling_back : bool;  (* re-entrancy guard for auto-rollback *)
  mutable retirements : int;
}

let create ?(constraints = []) ?(required = []) ?interfaces system =
  let interfaces =
    match interfaces with
    | Some ifs -> ifs
    | None -> System.interface_rules system
  in
  List.iter
    (fun pair ->
      if not (List.mem pair constraints) then
        invalid_arg
          (Printf.sprintf
             "Evolution.create: required pair %s->%s is not a declared \
              constraint"
             (fst pair) (snd pair)))
    required;
  {
    system;
    constraints;
    required;
    interfaces;
    current_epoch = 0;
    current_rules = System.strategy_rules system;
    current_strategy = None;
    next_epoch = 1;
    proposed = None;
    draining = [];
    rev_transitions = [];
    rev_rollbacks = [];
    rolling_back = false;
    retirements = 0;
  }

let current_epoch t = t.current_epoch
let current_rules t = t.current_rules
let draining t = t.draining
let transitions t = List.rev t.rev_transitions
let rollbacks t = List.rev t.rev_rollbacks
let constraints t = t.constraints
let required t = t.required

let stale_rejections t =
  List.fold_left
    (fun acc (_, shell) -> acc + Shell.stale_epoch_rejections shell)
    0 (System.shells t.system)

let duplicate_rule_id rules =
  let seen = Hashtbl.create 8 in
  List.fold_left
    (fun acc r ->
      match acc with
      | Some _ -> acc
      | None ->
        if Hashtbl.mem seen r.Rule.id then Some r.Rule.id
        else begin
          Hashtbl.replace seen r.Rule.id ();
          None
        end)
    None rules

let propose t (strategy : Strategy.t) =
  match t.proposed with
  | Some (n, _) -> Error (Printf.sprintf "epoch %d is already proposed" n)
  | None -> (
    match duplicate_rule_id strategy.Strategy.rules with
    | Some id -> Error ("duplicate rule id in proposed program: " ^ id)
    | None ->
      let epoch = t.next_epoch in
      t.next_epoch <- epoch + 1;
      List.iter
        (fun (_, shell) -> Shell.propose_epoch shell ~epoch strategy.Strategy.rules)
        (System.shells t.system);
      t.proposed <- Some (epoch, strategy);
      let obs = System.obs t.system in
      if Obs.enabled obs then
        Obs.incr obs "evolution_proposals"
          ~labels:[ ("strategy", strategy.Strategy.strategy_name) ];
      Ok epoch)

let rec cutover t =
  match t.proposed with
  | None -> Error "no epoch is proposed"
  | Some (epoch, strategy) ->
    let old_epoch = t.current_epoch and old_rules = t.current_rules in
    let old_strategy = t.current_strategy in
    let at = Sim.now (System.sim t.system) in
    List.iter
      (fun (_, shell) -> Shell.cutover_epoch shell ~epoch)
      (System.shells t.system);
    (* The incoming strategy starts from its own auxiliary state: a
       stale cache inherited across epochs could wrongly skip a forward
       (an actual leads violation), so aux items are re-initialized. *)
    System.apply_aux_init t.system strategy.Strategy.aux_init;
    System.register_strategy_periodics t.system strategy.Strategy.rules;
    let survivals =
      compare_programs ~interfaces_before:t.interfaces
        ~interfaces_after:t.interfaces ~strategy_before:old_rules
        ~strategy_after:strategy.Strategy.rules ~constraints:t.constraints
    in
    let tr =
      {
        tr_from = old_epoch;
        tr_to = epoch;
        tr_at = at;
        tr_strategy = strategy.Strategy.strategy_name;
        tr_survivals = survivals;
      }
    in
    t.proposed <- None;
    t.draining <- t.draining @ [ old_epoch ];
    t.current_epoch <- epoch;
    t.current_rules <- strategy.Strategy.rules;
    t.current_strategy <- Some strategy;
    t.rev_transitions <- tr :: t.rev_transitions;
    (* Push the incoming epoch's classification into the unified
       read-side view, so routing immediately skips copies whose metric
       guarantee this epoch lost (no-op for undeclared pairs). *)
    List.iter
      (fun cs ->
        System.note_epoch_survival t.system ~source:cs.cs_source
          ~target:cs.cs_target ~report:(report_after cs)
          (List.map
             (fun g ->
               {
                 System.Guarantee_view.es_epoch = epoch;
                 es_guarantee = g.gs_name;
                 es_status = survival_status g.gs_survival;
                 es_reason =
                   (match g.gs_survival with
                   | Lost reason | Never reason -> Some reason
                   | Kept | Upgraded -> None);
               })
             cs.cs_guarantees))
      survivals;
    let obs = System.obs t.system in
    if Obs.enabled obs then begin
      Obs.incr obs "evolution_cutovers";
      Obs.gauge obs "evolution_epoch" (float_of_int epoch);
      List.iter
        (fun cs ->
          let cname = cs.cs_source ^ "->" ^ cs.cs_target in
          List.iter
            (fun g ->
              Obs.incr obs "evolution_guarantee_survival"
                ~labels:
                  [ ("constraint", cname); ("guarantee", g.gs_name);
                    ("status", survival_status g.gs_survival) ];
              Obs.gauge obs "evolution_guarantee_held"
                ~labels:[ ("constraint", cname); ("guarantee", g.gs_name) ]
                (match g.gs_after with
                | Derive.Proved _ -> 1.0
                | Derive.Unprovable _ -> 0.0))
            cs.cs_guarantees)
        survivals
    end;
    (* -- auto-rollback (self-healing): a cutover that *regresses* a
       required pair — a guarantee proved under the outgoing epoch,
       unprovable under the incoming one — is undone immediately by
       re-proposing the outgoing program under a fresh epoch number.
       Only [Lost] triggers: [Never] means the guarantee was absent all
       along, so the prior epoch is no better a refuge. *)
    let lost_required =
      if t.rolling_back then []
      else
        List.concat_map
          (fun cs ->
            if List.mem (cs.cs_source, cs.cs_target) t.required then
              List.filter_map
                (fun g ->
                  match g.gs_survival with
                  | Lost _ -> Some (cs.cs_source, cs.cs_target, g.gs_name)
                  | Kept | Upgraded | Never _ -> None)
                cs.cs_guarantees
            else [])
          survivals
    in
    if lost_required <> [] then begin
      let restore =
        match old_strategy with
        | Some s -> s
        | None ->
          (* Epoch 0's program is configuration, not a Strategy — wrap
             the rules snapshot so it can be re-proposed. *)
          {
            Strategy.strategy_name = "epoch0";
            description = "base program restored by rollback";
            rules = old_rules;
            aux_init = [];
          }
      in
      let reason =
        String.concat ", "
          (List.map
             (fun (s, tg, g) -> Printf.sprintf "%s->%s %s" s tg g)
             lost_required)
      in
      (* Write-ahead: the rollback intent reaches stable storage before
         the restoring epoch's own Epoch_proposed / Epoch_cutover
         records, so a crash mid-rollback is explainable from the log
         and replay lands in the restored epoch. *)
      List.iter
        (fun (site, _) ->
          match System.journal t.system ~site with
          | Some j ->
            Journal.append j
              (Journal.Epoch_rollback
                 { time = at; from_epoch = epoch; to_epoch = old_epoch; reason })
          | None -> ())
        (System.shells t.system);
      t.rolling_back <- true;
      let restored =
        match propose t restore with
        | Error _ -> None
        | Ok via -> (
          match cutover t with Ok _ -> Some via | Error _ -> None)
      in
      t.rolling_back <- false;
      match restored with
      | None -> ()  (* unreachable: no outstanding proposal, valid rules *)
      | Some via ->
        t.rev_rollbacks <-
          {
            rb_at = at;
            rb_from = epoch;
            rb_to = old_epoch;
            rb_via = via;
            rb_strategy = strategy.Strategy.strategy_name;
            rb_lost = lost_required;
          }
          :: t.rev_rollbacks;
        if Obs.enabled obs then
          Obs.incr obs "evolution_rollbacks"
            ~labels:[ ("strategy", strategy.Strategy.strategy_name) ]
    end;
    Ok tr

let retire t ~epoch =
  if not (List.mem epoch t.draining) then
    Error (Printf.sprintf "epoch %d is not draining" epoch)
  else begin
    List.iter
      (fun (_, shell) -> Shell.retire_epoch shell ~epoch)
      (System.shells t.system);
    t.draining <- List.filter (fun e -> e <> epoch) t.draining;
    t.retirements <- t.retirements + 1;
    let obs = System.obs t.system in
    if Obs.enabled obs then Obs.incr obs "evolution_retirements";
    Ok ()
  end

let retirements t = t.retirements

let transport_drained t =
  match System.reliable t.system with
  | Some r -> Reliable.pending r = 0
  | None -> true

let retire_after t ~epoch ~delay =
  Sim.schedule (System.sim t.system) ~delay (fun () -> ignore (retire t ~epoch))

let quiesce_retire ?(check_period = 1.0) t =
  let sim = System.sim t.system in
  List.iter
    (fun epoch ->
      let rec check () =
        if List.mem epoch t.draining then
          if transport_drained t then ignore (retire t ~epoch)
          else Sim.schedule sim ~delay:check_period check
      in
      Sim.schedule sim ~delay:check_period check)
    t.draining

let evolve ?(quiesce = true) ?check_period t strategy =
  match propose t strategy with
  | Error e -> Error e
  | Ok _ -> (
    match cutover t with
    | Error e -> Error e
    | Ok tr ->
      if quiesce then quiesce_retire ?check_period t;
      Ok tr)
