module Sim = Cm_sim.Sim
module Objstore = Cm_sources.Objstore
module Health = Cm_sources.Health
open Cm_rule

type notify_mode =
  | No_notify
  | Plain
  | Filtered of {
      filter : old_value:Value.t -> new_value:Value.t -> bool;
      filter_expr : Expr.t;
    }

type item_binding = {
  base : string;
  cls : string;
  attr : string;
  writable : bool;
  notify : notify_mode;
}

type t = {
  sim : Sim.t;
  store : Objstore.t;
  site : string;
  emit : Cmi.emit;
  report : Cmi.failure_report;
  latency : float;
  notify_latency : float;
  delta : float;
  notify_delta : float;
  bindings : (string, item_binding) Hashtbl.t;
  mutable self_write : bool;
}

let health t = Objstore.health t.store

let rule_id t base kind = Printf.sprintf "%s/%s/%s" t.site base kind

let current_value t (item : Item.t) =
  if Health.mode (health t) = Health.Down then None
  else
    match Hashtbl.find_opt t.bindings item.Item.base, item.Item.params with
    | Some b, [ Value.Str id ] -> Objstore.get_attr t.store ~cls:b.cls ~id ~attr:b.attr
    | Some b, [] -> Objstore.get_attr t.store ~cls:b.cls ~id:"singleton" ~attr:b.attr
    | _ -> None

let id_of_item (item : Item.t) =
  match item.Item.params with
  | [ Value.Str id ] -> id
  | [] -> "singleton"
  | [ v ] -> Value.to_string v
  | _ -> invalid_arg ("Tr_objstore: too many parameters on " ^ Item.to_string item)

let interface_rules t =
  Hashtbl.fold
    (fun base b acc ->
      let pattern =
        if b.cls = "" then Interface.plain base else Interface.family base [ "n" ]
      in
      let rules = ref [ Interface.read ~id:(rule_id t base "read") ~delta:t.delta pattern ] in
      if b.writable then
        rules :=
          Interface.write ~id:(rule_id t base "write") ~delta:t.delta pattern :: !rules;
      (match b.notify with
       | No_notify -> ()
       | Plain ->
         rules :=
           Interface.notify ~id:(rule_id t base "notify") ~delta:t.notify_delta pattern
           :: !rules
       | Filtered { filter_expr; _ } ->
         rules :=
           Interface.conditional_notify ~id:(rule_id t base "notify")
             ~delta:t.notify_delta ~condition:filter_expr pattern
           :: !rules);
      !rules @ acc)
    t.bindings []
  |> List.sort (fun a b -> compare a.Rule.id b.Rule.id)

let down t =
  if Health.mode (health t) = Health.Down then begin
    t.report Msg.Logical;
    true
  end
  else false

let delayed t ~latency ~bound perform =
  let delay = latency +. Health.extra_latency (health t) in
  Sim.schedule t.sim ~delay (fun () ->
      perform ();
      if delay > bound then t.report Msg.Metric)

let request t desc ~kind =
  let event = t.emit desc ~kind in
  match desc.Event.name, desc.Event.args with
  | "WR", [ Event.Ai item; Event.Av v ] -> (
    if not (down t) then
      match Hashtbl.find_opt t.bindings item.Item.base with
      | Some ({ writable = true; _ } as b) ->
        let provenance =
          Event.Generated
            { rule_id = rule_id t item.Item.base "write"; trigger = event.Event.id }
        in
        delayed t ~latency:t.latency ~bound:t.delta (fun () ->
            if Health.mode (health t) = Health.Down then t.report Msg.Logical
            else begin
              t.self_write <- true;
              let ok =
                Objstore.set_attr t.store ~cls:b.cls ~id:(id_of_item item) ~attr:b.attr v
              in
              t.self_write <- false;
              if ok then ignore (t.emit (Event.w item v) ~kind:provenance)
              else begin
                Logs.warn (fun m ->
                    m "translator %s: object for %s missing" t.site (Item.to_string item));
                t.report Msg.Logical
              end
            end)
      | _ ->
        Logs.err (fun m ->
            m "translator %s: no write interface for %s" t.site (Item.to_string item)))
  | "RR", [ Event.Ai item ] -> (
    if not (down t) then
      match current_value t item with
      | None -> ()
      | Some v ->
        let provenance =
          Event.Generated
            { rule_id = rule_id t item.Item.base "read"; trigger = event.Event.id }
        in
        delayed t ~latency:t.latency ~bound:t.delta (fun () ->
            ignore (t.emit (Event.r item v) ~kind:provenance)))
  | name, _ ->
    Logs.err (fun m -> m "translator %s: unsupported request %s" t.site name)

let subscribe_binding t b =
  (* Subscribe unfiltered so spontaneous-write ground truth (Ws) is always
     recorded; the notify condition then decides whether an N is sent —
     semantically the in-source filtering of §3.1.1, since translator and
     source are co-located and the saved communication is the CM hop. *)
  let filter =
    match b.notify with
    | Filtered { filter; _ } -> Some filter
    | Plain | No_notify -> None
  in
  let callback ~id ~old_value ~new_value =
    if not t.self_write then begin
      let item = Item.make b.base ~params:(if b.cls = "" then [] else [ Value.Str id ]) in
      let ws = t.emit (Event.ws ~old:old_value item new_value) ~kind:Event.Spontaneous in
      let wanted =
        match filter with None -> true | Some f -> f ~old_value ~new_value
      in
      if wanted && not (Health.dropping_notifications (health t)) then begin
        let provenance =
          Event.Generated { rule_id = rule_id t b.base "notify"; trigger = ws.Event.id }
        in
        delayed t ~latency:t.notify_latency ~bound:t.notify_delta (fun () ->
            ignore (t.emit (Event.n item new_value) ~kind:provenance))
      end
    end
  in
  ignore (Objstore.subscribe t.store ~cls:b.cls ~attr:b.attr callback)

let create ~sim ~store ~site ~emit ~report ?(latency = 0.1) ?(notify_latency = 0.5)
    ?delta ?notify_delta bindings =
  let delta = Option.value delta ~default:(latency *. 5.0) in
  let notify_delta = Option.value notify_delta ~default:(notify_latency *. 5.0) in
  let table = Hashtbl.create 8 in
  List.iter
    (fun b ->
      if Hashtbl.mem table b.base then
        invalid_arg ("Tr_objstore: duplicate binding for " ^ b.base);
      Hashtbl.replace table b.base b)
    bindings;
  let t =
    {
      sim;
      store;
      site;
      emit;
      report;
      latency;
      notify_latency;
      delta;
      notify_delta;
      bindings = table;
      self_write = false;
    }
  in
  Hashtbl.iter
    (fun _ b ->
      match b.notify with No_notify -> () | Plain | Filtered _ -> subscribe_binding t b)
    t.bindings;
  t

let cmi t =
  {
    Cmi.site = t.site;
    name = "objstore";
    owns = Hashtbl.mem t.bindings;
    bases =
      List.sort String.compare
        (Hashtbl.fold (fun base _ acc -> base :: acc) t.bindings []);
    interface_rules = (fun () -> interface_rules t);
    current_value = current_value t;
    request = request t;
  }

let set_app t item v =
  Health.check (health t) ~name:"objstore";
  match Hashtbl.find_opt t.bindings item.Item.base with
  | None -> invalid_arg ("Tr_objstore.set_app: unknown item " ^ Item.to_string item)
  | Some b -> Objstore.set_attr t.store ~cls:b.cls ~id:(id_of_item item) ~attr:b.attr v
