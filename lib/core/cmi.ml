type emit = Cm_rule.Event.desc -> kind:Cm_rule.Event.kind -> Cm_rule.Event.t

type failure_report = Msg.failure_kind -> unit

type t = {
  site : string;
  name : string;
  owns : string -> bool;
  bases : string list;
  interface_rules : unit -> Cm_rule.Rule.t list;
  current_value : Cm_rule.Item.t -> Cm_rule.Value.t option;
  request : Cm_rule.Event.desc -> kind:Cm_rule.Event.kind -> unit;
}

let request_names = [ "WR"; "RR"; "DR" ]
