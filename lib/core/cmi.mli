(** The CM-Interface: what every CM-Translator presents to its CM-Shell.

    The CMI factors the peculiarities of each Raw Information Source away
    from the shells (paper §4.1): whatever the RIS — SQL server, flat
    files, a whois daemon — the shell sees the same record of operations.
    Translators are constructed from a CM-RID-style configuration and an
    {!emit} callback through which they report events (N, R, W, Ws, INS,
    DEL, failure notices) back to the shell. *)

type emit = Cm_rule.Event.desc -> kind:Cm_rule.Event.kind -> Cm_rule.Event.t
(** Record an event occurrence at the translator's site and run it
    through the local shell's rule matching, returning the recorded
    event (translators thread its id into the provenance of response
    events).  Supplied by the shell at attachment time. *)

type failure_report = Msg.failure_kind -> unit

type t = {
  site : string;
  name : string;  (** translator kind, for diagnostics: "relational", … *)
  owns : string -> bool;
      (** which item base names this translator is responsible for *)
  bases : string list;
      (** the base names [owns] accepts, enumerated — the shell indexes
          these at attachment time so per-read owner lookup is a hash
          probe, not a translator-list scan.  Must satisfy
          [owns b = List.mem b bases] for every base the shell can see. *)
  interface_rules : unit -> Cm_rule.Rule.t list;
      (** the interface statements this source honours, queried by the
          toolkit during initialization (§4.1) *)
  current_value : Cm_rule.Item.t -> Cm_rule.Value.t option;
      (** synchronous local peek for condition evaluation at this site
          (conditions may only reference local data, §3.2) *)
  request : Cm_rule.Event.desc -> kind:Cm_rule.Event.kind -> unit;
      (** submit a WR / RR / DR event: the translator records the
          request's receipt and performs the native operation, emitting
          the W / R / DEL response within the interface's bound *)
}

val request_names : string list
(** Descriptor names a translator accepts via [request]. *)
