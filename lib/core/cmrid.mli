(** CM-RID files: textual configuration of sources and their items.

    The paper's CM-Raw-Interface-Description "configures standard
    CM-Translators to the particular underlying data source" (§4.1) —
    SQL command templates, trigger declarations, connection details.
    Our format is line-based; [#] comments; one [source] block per RIS:

    {v
    source sf relational
      init CREATE TABLE employees (empid TEXT PRIMARY KEY, salary INT NOT NULL)
      init INSERT INTO employees VALUES ('e1', 100)
      item Salary1(n)
        read   SELECT salary FROM employees WHERE empid = $n
        write  UPDATE employees SET salary = $b WHERE empid = $n
        notify employees.salary key empid
      latency write 0.2
      delta notify 5.0

    source ny kvfile
      item Phone2(n)
        key phone.$n
        writable

    location Flag app
    constraint copy Salary1 Salary2
    v}

    [notify] may end with [threshold 0.1] for a conditional-notify
    interface (a relative-change filter) or [observe] for ground-truth
    recording without a notify interface.  [location] lines place
    CM-auxiliary item bases at sites; items declared under a source are
    located there automatically.  Top-level [rule <text>] lines hold the
    strategy specification (one rule each, in the rule language of
    {!Cm_rule.Parser}); {!Toolkit.build} installs them.  Top-level
    [constraint copy <source> <target>] lines declare the inter-site
    constraints the configuration promises to maintain — they are not
    executed, but {!Cm_analysis.Analysis} drives the {!Derive} prover
    over each one to report configurations that silently promise
    nothing.

    Every declaration carries the 1-based line it starts on so static
    diagnostics can point back into the file. *)

type notify_decl = {
  n_table : string;
  n_column : string;
  n_key : string;
  n_send : bool;
  n_threshold : float option;
}

type item_decl = {
  i_base : string;
  i_params : string list;
  i_read : string option;
  i_write : string option;
  i_delete : string option;
  i_notify : notify_decl option;
  i_no_spontaneous : bool;
  i_key_template : string option;  (** kvfile sources *)
  i_writable : bool;  (** kvfile sources *)
  i_line : int;  (** line of the [item] head *)
}

type kind = Relational | Kvfile

type op = Read_op | Write_op | Notify_op | Delete_op

type source_decl = {
  s_site : string;
  s_kind : kind;
  s_items : item_decl list;
  s_init : string list;  (** statements run at build time (relational) *)
  s_latencies : (op * float) list;
  s_deltas : (op * float) list;
  s_line : int;  (** line of the [source] head *)
}

type location_decl = { l_base : string; l_site : string; l_line : int }

type rule_decl = { r_text : string; r_line : int }

type constraint_decl = {
  c_source : string;
  c_target : string;
  c_required : bool;
      (** the trailing [required] attribute: this pair is under
          self-healing — a rule-epoch cutover that loses one of its
          proved guarantees is rolled back ({!Evolution.create}) *)
  c_line : int;
}
(** [constraint copy <source> <target> [required]]: maintain [c_target]
    as a copy of [c_source] (§3.3.1).  Duplicate [(source, target)]
    pairs are a parse error — the effective constraint set must not
    depend on declaration order. *)

type dependency_decl = { d_text : string; d_line : int }
(** One top-level [dependency <text>] line: a tuple- or
    equality-generating dependency in the surface syntax of
    {!Cm_chase.Chase.parse} ([label: body -> head]).  Held as raw text
    here — like [rule] lines — and parsed by the chase library so this
    module stays independent of it. *)

type t = {
  sources : source_decl list;
  locations : location_decl list;
  rules : rule_decl list;
      (** top-level [rule <text>] lines: the strategy specification, in
          the rule language, installed by {!Toolkit.build} *)
  constraints : constraint_decl list;
      (** declared inter-site constraints, checked statically by
          [cmtool check] *)
  dependencies : dependency_decl list;
      (** top-level [dependency <text>] lines: TGD/EGD constraints,
          analyzed by the DEP passes of [cmtool check] and compiled to
          ordinary CM rules on demand by [Chase.to_rules] — never
          auto-installed by {!Toolkit.build} *)
}

type error = { e_line : int; e_msg : string }
(** One parse problem; [e_line] is 1-based (0 for file-level errors). *)

val error_to_string : error -> string
val errors_to_string : error list -> string

val parse : string -> (t, error list) result
(** Parses the whole file, accumulating {e every} error rather than
    stopping at the first, so one run reports all problems. *)

val parse_partial : string -> t * error list
(** Like {!parse} but also returns the declarations that did parse when
    there are errors — static analysis diagnoses broken configurations
    as far as possible. *)

val parse_file : string -> (t, error list) result

val locator : ?default:string -> t -> Cm_rule.Item.locator
(** Item base → site, from source item declarations and [location]
    lines.  Unknown bases go to [default] (default ["unknown"]). *)

val required_constraints : t -> (string * string) list
(** The [(source, target)] pairs declared [required], in declaration
    order — what {!Evolution.create}'s [?required] wants. *)

val sites : t -> string list
