(** Per-site write-ahead log backing crash recovery.

    §5 of the paper maps crashes to {e metric} failures "if the database
    ... can 'remember' messages that need to be sent out upon recovery".
    This module is that memory: an append-only stream of records per
    site — events received, rule-firing decisions, CM-store writes, the
    reliable layer's outbound/ack/delivery state, and incarnation
    changes — plus optional checkpoints that snapshot the volatile state
    so replay after a crash is bounded (the ARIES discipline, reduced to
    the CM-Shell's event/firing model).

    The journal models stable storage: it is owned by the recovery
    manager and deliberately survives {!Cm_net.Net.crash_site}, which
    wipes only volatile state.  Appends are deterministic in simulation
    order and {!to_string} is canonical, so two runs of the same seed
    produce byte-identical journals — the replay-determinism tests rely
    on this. *)

(** How much a {!System} remembers across crashes.  [None] is the
    pre-recovery behaviour: a crash loses in-flight traffic and volatile
    state, surfacing as a {e logical} failure.  [Journal] records enough
    to replay; [Journal_with_checkpoint] additionally snapshots volatile
    state periodically so replay cost stays bounded. *)
type durability = None | Journal | Journal_with_checkpoint

val durability_to_string : durability -> string
(** ["none"], ["journal"], ["journal+checkpoint"]. *)

val durability_of_string : string -> durability option

(** Transport state towards/from one peer as frozen by a checkpoint:
    sender-side next message id and unacknowledged messages, and
    receiver-side epoch, next expected sequence number, and the
    cross-incarnation duplicate-suppression set. *)
type link_state = {
  peer : string;
  next_mid : int;
  unacked : (int * int * int * Msg.t) list;  (** mid, epoch, seq, payload *)
  in_epoch : int;
  in_expected : int;
  delivered_mids : int list;
}

(** Lifecycle phase of a rule epoch (see {!Cm_core.Evolution}) as frozen
    by a checkpoint. *)
type epoch_phase = Ep_proposed | Ep_active | Ep_draining | Ep_retired

val epoch_phase_to_string : epoch_phase -> string

type record =
  | Event of { time : float; site : string; desc : string }
      (** An event recorded at this site (trace-level memory). *)
  | Fire_sent of {
      time : float;
      rule_id : string;
      to_site : string;
      trigger_id : int;
    }  (** A firing decision made by this site's shell. *)
  | Store_write of { time : float; item : Cm_rule.Item.t; value : Cm_rule.Value.t }
      (** A write to the shell's volatile {!Store}, logged before it is
          applied (write-ahead), so recovery can rebuild the store. *)
  | Outbound of {
      time : float;
      to_site : string;
      mid : int;
      epoch : int;
      seq : int;
      payload : Msg.t;
    }
      (** A message handed to the reliable layer — the §5 "message that
          needs to be sent out upon recovery" until a matching
          {!Acked} appears. *)
  | Acked of { time : float; to_site : string; mid : int }
  | Delivered of {
      time : float;
      from_site : string;
      epoch : int;
      seq : int;
      mid : int;
      applied : bool;
    }
      (** An inbound sequence slot consumed; [applied = false] means the
          payload was suppressed as a cross-epoch duplicate but the slot
          still advances the expected sequence number on replay. *)
  | Restarted of { time : float; incarnation : int }
  | Epoch_proposed of { time : float; epoch : int; rules : Cm_rule.Rule.t list }
      (** A rule epoch staged at this site, with its full program —
          journaled write-ahead so a crash mid-transition can replay the
          proposal. *)
  | Epoch_cutover of { time : float; epoch : int }
      (** [epoch] became the active program; the previously active epoch
          began draining. *)
  | Epoch_retired of { time : float; epoch : int }
      (** [epoch] stopped draining; firings tagged with it are rejected
          from now on. *)
  | Epoch_rollback of {
      time : float;
      from_epoch : int;
      to_epoch : int;
      reason : string;
    }
      (** The cutover to [from_epoch] regressed a required guarantee and
          was undone by re-proposing [to_epoch]'s program under a fresh
          epoch number.  Logged write-ahead so a crash mid-rollback is
          explainable from the log; the epoch-state effects themselves
          replay via the rollback's own {!Epoch_proposed} /
          {!Epoch_cutover} records. *)
  | Checkpoint of {
      time : float;
      incarnation : int;
      store : (Cm_rule.Item.t * Cm_rule.Value.t) list;
      links : link_state list;
      rule_epochs : (int * epoch_phase * Cm_rule.Rule.t list) list;
          (** Epoch state at checkpoint time, ascending by number.  Empty
              for a site still running only the base program; epoch 0,
              whose rules are configuration rather than journaled state,
              appears with an empty rule list and only when no longer
              simply active. *)
      active_epoch : int;
    }

val record_kind : record -> string
(** Stable lowercase tag, used as the [kind] label of the
    [journal_appends] counter. *)

val record_to_string : record -> string
(** Canonical one-line rendering. *)

type t

val site : t -> string

val append : t -> record -> unit
(** Appends are observable as [journal_appends] counters (labels [site],
    [kind]); checkpoint records additionally feed the
    [journal_checkpoint_bytes] series. *)

val records : t -> record list
(** Oldest first. *)

val length : t -> int

val incarnation : t -> int
(** Number of {!Restarted} records appended — the epoch under which the
    site's reliable links currently operate. *)

val replay_base : t -> record option * record list
(** The newest {!Checkpoint} (if any) and every record after it, oldest
    first: exactly what recovery replays. *)

val to_string : t -> string
(** One canonical line per record — byte-identical across replays of the
    same seed. *)

type stats = {
  appends : int;
  bytes : int;  (** total serialized size — the journal-overhead metric *)
  checkpoints : int;
  incarnation : int;
}

val stats : t -> stats

(** {2 Registry}

    One journal per site, held on shared (stable) storage by the
    system. *)

type registry

val create_registry : ?obs:Obs.t -> unit -> registry
val for_site : registry -> site:string -> t
val sites : registry -> string list
(** Sites that ever journaled, sorted. *)
