type t = { mutable data : Cm_rule.Value.t Cm_rule.Item.Map.t }

let create () = { data = Cm_rule.Item.Map.empty }

let get t item = Cm_rule.Item.Map.find_opt item t.data

let set t item v = t.data <- Cm_rule.Item.Map.add item v t.data

let remove t item = t.data <- Cm_rule.Item.Map.remove item t.data

let items t = List.map fst (Cm_rule.Item.Map.bindings t.data)

let bindings t = Cm_rule.Item.Map.bindings t.data

let clear t = t.data <- Cm_rule.Item.Map.empty
