(** CM-Shell: the per-site rule engine of the constraint manager.

    Each shell (paper Figure 1, §4.1):

    - receives events from its CM-Translators and from its own periodic
      timers, records them in the global trace, and matches them against
      the strategy rules whose LHS site it handles;
    - on a match, evaluates the LHS condition against {e local} data and
      forwards the binding environment to the shell of the rule's RHS
      site as a {!Msg.Fire} envelope (rule distribution by LHS site);
    - on receiving an envelope, evaluates each RHS step's guard against
      local data and produces the step's event: requests (WR/RR/DR) go
      to the owning translator, [W] on CM-local items updates the
      private store, and any other name is recorded locally and fed back
      into matching, which is how multi-rule strategies chain;
    - propagates failure notices between sites (§5).

    A shell may handle several sites: a database without a shell of its
    own is served by another site's shell (Figure 1, site 3) by
    attaching its translator here and routing its sites to this shell.

    No global data, no global transactions: every condition is evaluated
    against data co-located with the evaluating shell (§7.2). *)

type t

type dispatch = Indexed | Naive
(** How {!occurred} selects candidate rules for an event.  [Indexed]
    (the default) consults the {!Cm_rule.Rule_index} discrimination
    buckets — O(candidates) per event.  [Naive] is the pre-index linear
    scan over every installed rule, retained as the oracle for the
    differential test harness and the E15 benchmark.  Both produce the
    same matches in the same order. *)

type ctx = {
  ctx_sim : Cm_sim.Sim.t;
  ctx_net : Msg.t Cm_net.Net.t;
  ctx_reliable : Reliable.t option;
  ctx_trace : Cm_rule.Trace.t;
  ctx_locator : Cm_rule.Item.locator;
  ctx_obs : Obs.t;
  ctx_journals : Journal.registry option;
  ctx_dispatch : dispatch;
}
(** The per-system context every shell shares: simulation clock,
    network, optional reliable-delivery layer, global trace, item
    locator, observability registry, and (when the system is configured
    durable) the per-site journal registry.  {!System.create} builds it
    once from its {!System.Config.t}. *)

val create : ctx -> site:string -> t
(** Registers the shell's network handler at [site].  When
    [ctx.ctx_reliable] is given, all shell traffic (rule firings,
    failure and reset notices) goes through that reliable-delivery layer
    instead of the raw network, and the layer's failure detector feeds
    the shell's failure listeners via {!Msg.Suspect_down} /
    {!Msg.Reset_notice}. *)

val site : t -> string
val sim : t -> Cm_sim.Sim.t
val trace : t -> Cm_rule.Trace.t

val attach_translator : t -> Cmi.t -> unit
(** The translator's sites become handled by this shell. *)

val translators : t -> Cmi.t list

val emitter_for : t -> site:string -> Cmi.emit
(** The emit callback handed to a translator at [site]: records the event
    there and runs local rule matching.  Also used by workload drivers to
    record ground-truth spontaneous events on sources that cannot observe
    their own changes. *)

val set_route : t -> (string -> string) -> unit
(** Map RHS sites to the shell site responsible for them (identity by
    default).  Needed only when shells handle foreign sites. *)

val install_strategy : t -> Cm_rule.Rule.t list -> unit
(** Install strategy rules.  The shell matches those whose LHS site it
    handles and executes the RHS of any rule it receives a Fire for.
    Interface rules are {e not} installed here — they describe translator
    behaviour, not shell behaviour. *)

val installed_rules : t -> Cm_rule.Rule.t list

val register_periodic : t -> ?site:string -> period:float -> unit -> unit
(** Start a [P(period)] event source at [site] (default: the shell's own
    site).  Duplicate (site, period) registrations are ignored. *)

val read_aux : t -> Cm_rule.Item.t -> Cm_rule.Value.t option
(** Application access to CM auxiliary data (§7.1): consistent because
    the store is under the shell's control. *)

val write_aux : t -> Cm_rule.Item.t -> Cm_rule.Value.t -> unit
(** Host-language write to the private store; recorded as a [W] event. *)

val local_state : t -> Cm_rule.Expr.state
(** The local-data oracle: translator current values for owned items,
    private store otherwise. *)

val on_custom : t -> string -> (Cm_rule.Event.t -> unit) -> unit
(** Host-language hook on a (usually custom) event name occurring at this
    shell — the paper's "implemented using the host language of the CM"
    escape hatch for set-oriented strategies such as the referential
    integrity sweep (§6.2). *)

val on_failure_notice : t -> (origin:string -> Msg.failure_kind -> unit) -> unit
(** Runs for locally detected failures and for notices from other sites. *)

val on_reset_notice : t -> (origin:string -> unit) -> unit

val report_failure : t -> Msg.failure_kind -> unit
(** Called by translators on detecting a RIS failure; notifies local
    listeners and broadcasts to peer sites. *)

val broadcast_reset : t -> unit

val set_peer_sites : t -> string list -> unit
(** Where failure/reset notices are broadcast. *)

(** {2 Introspection for benchmarks} *)

val fires_sent : t -> int
val fires_executed : t -> int
val events_seen : t -> int

val rule_index_stats : t -> int * int
(** [(buckets, largest)] of the rule discrimination index — see
    {!Cm_rule.Rule_index.bucket_stats}. *)

(** {2 Rule epochs}

    The site's installed rule program is versioned (ISSUE 6): epoch 0 is
    the base program from configuration time; {!Evolution} stages later
    ones.  The lifecycle per epoch is proposed → active → draining →
    retired.  Outbound {!Msg.Fire} envelopes carry the epoch they were
    produced under; an inbound envelope executes under its origin
    epoch's program while that epoch is active or draining, and is
    rejected and counted once it is retired — never re-interpreted under
    a newer program, never silently dropped.  Transitions are journaled
    write-ahead so {!Recovery} replays a crashed site back into the
    epoch it had reached. *)

val rule_epoch : t -> int
(** The active epoch — what outbound firings are tagged with. *)

val epoch_phase : t -> epoch:int -> Journal.epoch_phase option

val stale_epoch_rejections : t -> int
(** Inbound firings rejected because their origin epoch was retired or
    unknown. *)

val propose_epoch : t -> epoch:int -> Cm_rule.Rule.t list -> unit
(** Stage a new program under a fresh epoch number (> the active one).
    The program (with all its rules) is journaled before the volatile
    epoch table changes.  Raises [Invalid_argument] on a reused number
    or duplicate rule ids. *)

val cutover_epoch : t -> epoch:int -> unit
(** Make a proposed epoch the active program: new events dispatch under
    it from now on, the previously active epoch starts draining.  The
    dispatch index is updated incrementally — rules the new program
    keeps verbatim retain their entries; only the program delta is
    removed/added. *)

val retire_epoch : t -> epoch:int -> unit
(** End a draining epoch: firings tagged with it are rejected and
    counted from now on.  Only a draining epoch can retire. *)

(** A replayed epoch transition (see {!Recovery}). *)
type epoch_op =
  | Op_propose of int * Cm_rule.Rule.t list
  | Op_cutover of int
  | Op_retire of int

val restore_epoch_ops : t -> epoch_op list -> unit
(** Replay transitions without re-journaling them — the recovery path,
    called after {!reset_volatile} dropped the site back to epoch 0. *)

val epoch_snapshot : t -> (int * Journal.epoch_phase * Cm_rule.Rule.t list) list * int
(** Epoch state for a checkpoint: [(number, phase, rules)] ascending
    (epoch 0, whose rules are configuration, appears with [] and only
    when no longer simply active), plus the active epoch number. *)

(** {2 Crash-recovery hooks}

    Driven by {!Recovery}; not meant for application use.  When the
    shell has a journal, every event it records, every firing decision,
    and every store write is journaled (write-ahead), and the failure
    detector's {!Msg.Suspect_down} verdicts are reported as {e metric}
    instead of logical failures — a journaled site's updates arrive
    late, not never (§5). *)

val journal : t -> Journal.t option

val reset_volatile : t -> unit
(** Wipe the private store and drop rule epochs beyond the base program,
    modelling the loss of volatile memory at a crash (the base program
    is configuration and survives).  Counters and trace survive: they
    are measurement, not state. *)

val restore_aux : t -> Cm_rule.Item.t -> Cm_rule.Value.t -> unit
(** Replay a journaled store write without re-emitting its event or
    re-journaling it. *)
