(** Reliable, in-order, exactly-once delivery over a faulty {!Cm_net.Net}.

    The paper's guarantee proofs assume the network cannot lose,
    duplicate, or reorder messages (§5 footnote 4, Appendix A.2 property
    7).  {!Cm_net.Net} can now violate all three; this layer sits between
    the network and the CM-Shells and re-earns the assumption
    explicitly:

    - every application message travels in a sequence-numbered
      {!Msg.Data} envelope, acknowledged by the receiver with {!Msg.Ack};
    - unacknowledged envelopes are retransmitted on a timeout that backs
      off exponentially up to a cap; after [max_retries] attempts the
      peer is suspected down and — without a journal — the envelope is
      abandoned (with one, the durable envelope stays on the wire at the
      capped interval: see below);
    - the receiver suppresses duplicates and buffers out-of-order
      arrivals, handing envelopes to the shell exactly once, in send
      order per directed link;
    - optionally, every endpoint emits periodic {!Msg.Heartbeat}s and
      runs a threshold failure detector over them: a peer not heard from
      for [suspect_after] seconds is suspected, which delivers a local
      {!Msg.Suspect_down} — turning a silent network-level stall into
      the paper's §5 failure notice so guarantees degrade instead of
      lying.  Hearing from a suspected peer again delivers a local
      {!Msg.Reset_notice} for it.

    {b Crash recovery.}  When a {!Journal} registry is attached, the
    exactly-once property extends across site crashes:

    - each directed link's sender numbers frames within an {e epoch}
      (the sender's incarnation, bumped by {!Cm_core.Recovery} on
      restart) and every message carries a stable per-link {e mid};
    - sends, acks, and in-order deliveries are journaled
      (write-ahead), so after a crash the unacknowledged set and the
      receiver window can be rebuilt;
    - the receiver rejects frames from epochs older than the one it is
      synchronized to (counted as [epoch_rejections]) instead of letting
      a previous life's retransmits collide with the new sequence space,
      and suppresses re-queued messages whose mid it already delivered;
    - a retransmission chain that exhausts [max_retries] raises the
      suspicion but keeps the journaled frame on the wire at the capped
      interval — a give-up may conclude {e after} a restarted peer's
      last sign of life, so waiting to hear it again would strand the
      frame;
    - hearing again from a suspected peer additionally re-queues
      journal-unacked messages towards it (covering frames whose timers
      died with a previous incarnation).

    All timers run on the simulation clock and all state changes are
    deterministic, so faulty runs remain reproducible from their seed.
    Local sends (site to itself) bypass the protocol: the simulated
    network never loses them. *)

type t

type config = {
  retry_timeout : float;  (** initial retransmission timeout, seconds *)
  backoff : float;  (** timeout multiplier per retry *)
  max_timeout : float;  (** retransmission timeout cap *)
  max_retries : int;  (** retransmissions before giving up and suspecting *)
  heartbeat_period : float;  (** 0 disables heartbeats and the detector *)
  suspect_after : float;
      (** silence threshold before suspecting a peer; 0 means
          [3 *. heartbeat_period] *)
}

val default_config : config
(** 1 s initial timeout, ×2 backoff capped at 10 s, 10 retries,
    heartbeats disabled. *)

type stats = {
  data_sent : int;  (** first transmissions of application envelopes *)
  retransmits : int;
  acks_sent : int;
  delivered : int;  (** envelopes handed to a handler, exactly once each *)
  dup_suppressed : int;  (** received again after delivery (or while buffered) *)
  reordered : int;  (** arrived ahead of a gap and were buffered *)
  heartbeats_sent : int;
  give_ups : int;
      (** retransmission chains that exhausted [max_retries]: the
          envelope is abandoned without a journal, kept on the wire at
          the capped interval with one *)
  suspects : int;
  recoveries : int;
  epoch_rejections : int;
      (** frames from a previous incarnation of the sender, rejected *)
  requeued : int;  (** journal-unacked messages put back on the wire *)
}

val create :
  sim:Cm_sim.Sim.t ->
  net:Msg.t Cm_net.Net.t ->
  ?config:config ->
  ?obs:Obs.t ->
  ?journals:Journal.registry ->
  unit ->
  t
(** [obs] (default {!Obs.noop}) receives [reliable_*] counters
    (data_sent, retransmits, acks_sent, delivered, dup_suppressed,
    reordered, heartbeats_sent, give_ups, suspects, recoveries,
    epoch_rejections, requeued) and ["retransmit"] child spans for
    retried {!Msg.Fire} envelopes.  [journals] (default: none) turns on
    write-ahead logging of transport state, the prerequisite for crash
    recovery. *)

val config : t -> config

val register : t -> site:string -> (Msg.t -> unit) -> unit
(** Install the application handler for a site; registers the site's
    transport handler with the underlying network and, if heartbeats are
    enabled, starts its heartbeat/detector timer.
    @raise Invalid_argument if the site is already registered. *)

val send : t -> from_site:string -> to_site:string -> Msg.t -> unit
(** Queue a message for reliable delivery.  Delivery to the handler at
    [to_site] happens exactly once, in per-link send order, as long as
    the link's loss rate leaves any retransmission chain alive — or,
    with a journal attached, as long as the message is eventually
    re-queued by recovery. *)

val on_suspect : t -> (site:string -> suspect:string -> unit) -> unit
(** Called when [site]'s detector (or retransmission give-up) starts
    suspecting [suspect], in addition to the local {!Msg.Suspect_down}
    delivery.  Registration is O(1). *)

val on_recover : t -> (site:string -> peer:string -> unit) -> unit
(** Registration is O(1) (used to be a quadratic list append). *)

val suspects : t -> site:string -> string list
(** Peers currently suspected by [site]'s detector, sorted. *)

(** {2 Crash-recovery hooks}

    Driven by {!Cm_core.Recovery}; not meant for application use. *)

val reset_endpoint : t -> site:string -> unit
(** Wipe [site]'s volatile transport state: its failure-detector memory,
    the sender half of every link leaving it, and the receiver half of
    every link entering it.  Models the loss of in-memory protocol state
    at a crash; {!restore_sender_state} / {!restore_receiver_state}
    rebuild what the journal remembers. *)

val restore_sender_state :
  t -> from_site:string -> to_site:string -> epoch:int -> next_mid:int -> unit
(** Rebind the sender half of a link under a new incarnation: sequence
    numbers restart at 0 in [epoch]; mids continue from [next_mid]. *)

val restore_receiver_state :
  t ->
  from_site:string ->
  to_site:string ->
  epoch:int ->
  expected:int ->
  delivered_mids:int list ->
  unit
(** Rebuild the receiver half of a link from journaled deliveries: the
    peer epoch it was synchronized to, the next expected sequence
    number, and the cross-incarnation duplicate-suppression set. *)

val requeue_unacked : t -> from_site:string -> to_site:string -> unit
(** Re-send every journal-unacked message from [from_site] to [to_site]
    that is not already in flight, in original send order.  Entries from
    the current epoch resume their original sequence slot; entries from
    a previous incarnation are re-sent under the current epoch with
    fresh sequence numbers (and their stable mid).  No-op without a
    journal. *)

val stats : t -> stats

val pending : t -> int
(** Envelopes sent but neither acknowledged nor abandoned. *)
