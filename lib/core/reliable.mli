(** Reliable, in-order, exactly-once delivery over a faulty {!Cm_net.Net}.

    The paper's guarantee proofs assume the network cannot lose,
    duplicate, or reorder messages (§5 footnote 4, Appendix A.2 property
    7).  {!Cm_net.Net} can now violate all three; this layer sits between
    the network and the CM-Shells and re-earns the assumption
    explicitly:

    - every application message travels in a sequence-numbered
      {!Msg.Data} envelope, acknowledged by the receiver with {!Msg.Ack};
    - unacknowledged envelopes are retransmitted on a timeout that backs
      off exponentially up to a cap, and abandoned (with the peer
      suspected down) after [max_retries] attempts;
    - the receiver suppresses duplicates and buffers out-of-order
      arrivals, handing envelopes to the shell exactly once, in send
      order per directed link;
    - optionally, every endpoint emits periodic {!Msg.Heartbeat}s and
      runs a threshold failure detector over them: a peer not heard from
      for [suspect_after] seconds is suspected, which delivers a local
      {!Msg.Suspect_down} — turning a silent network-level stall into
      the paper's §5 failure notice so guarantees degrade instead of
      lying.  Hearing from a suspected peer again delivers a local
      {!Msg.Reset_notice} for it.

    All timers run on the simulation clock and all state changes are
    deterministic, so faulty runs remain reproducible from their seed.
    Local sends (site to itself) bypass the protocol: the simulated
    network never loses them. *)

type t

type config = {
  retry_timeout : float;  (** initial retransmission timeout, seconds *)
  backoff : float;  (** timeout multiplier per retry *)
  max_timeout : float;  (** retransmission timeout cap *)
  max_retries : int;  (** retransmissions before giving up and suspecting *)
  heartbeat_period : float;  (** 0 disables heartbeats and the detector *)
  suspect_after : float;
      (** silence threshold before suspecting a peer; 0 means
          [3 *. heartbeat_period] *)
}

val default_config : config
(** 1 s initial timeout, ×2 backoff capped at 10 s, 10 retries,
    heartbeats disabled. *)

type stats = {
  data_sent : int;  (** first transmissions of application envelopes *)
  retransmits : int;
  acks_sent : int;
  delivered : int;  (** envelopes handed to a handler, exactly once each *)
  dup_suppressed : int;  (** received again after delivery (or while buffered) *)
  reordered : int;  (** arrived ahead of a gap and were buffered *)
  heartbeats_sent : int;
  give_ups : int;  (** envelopes abandoned after [max_retries] *)
  suspects : int;
  recoveries : int;
}

val create :
  sim:Cm_sim.Sim.t ->
  net:Msg.t Cm_net.Net.t ->
  ?config:config ->
  ?obs:Obs.t ->
  unit ->
  t
(** [obs] (default {!Obs.noop}) receives [reliable_*] counters
    (data_sent, retransmits, acks_sent, delivered, dup_suppressed,
    reordered, heartbeats_sent, give_ups, suspects, recoveries) and
    ["retransmit"] child spans for retried {!Msg.Fire} envelopes. *)

val config : t -> config

val register : t -> site:string -> (Msg.t -> unit) -> unit
(** Install the application handler for a site; registers the site's
    transport handler with the underlying network and, if heartbeats are
    enabled, starts its heartbeat/detector timer.
    @raise Invalid_argument if the site is already registered. *)

val send : t -> from_site:string -> to_site:string -> Msg.t -> unit
(** Queue a message for reliable delivery.  Delivery to the handler at
    [to_site] happens exactly once, in per-link send order, as long as
    the link's loss rate leaves any retransmission chain alive. *)

val on_suspect : t -> (site:string -> suspect:string -> unit) -> unit
(** Called when [site]'s detector (or retransmission give-up) starts
    suspecting [suspect], in addition to the local {!Msg.Suspect_down}
    delivery. *)

val on_recover : t -> (site:string -> peer:string -> unit) -> unit

val suspects : t -> site:string -> string list
(** Peers currently suspected by [site]'s detector, sorted. *)

val stats : t -> stats

val pending : t -> int
(** Envelopes sent but neither acknowledged nor abandoned. *)
