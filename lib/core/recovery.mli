(** Crash-recovery manager: replay, re-queue, re-handshake.

    §5 of the paper: "crashes can be mapped to metric failures if the
    database ... can 'remember' messages that need to be sent out upon
    recovery."  {!Journal} is the memory; this module is the protocol
    that uses it.  On {!restart}:

    + the site's network endpoint comes back and a [Restarted] record
      opens its next incarnation;
    + the volatile state the crash destroyed is wiped explicitly (shell
      store, reliable-transport link state) — recovery must not cheat by
      reading surviving heap state;
    + the journal is replayed — the newest checkpoint, then every record
      after it — rebuilding the store, the receiver windows and
      duplicate-suppression sets, and the set of unacknowledged outbound
      messages;
    + unacknowledged messages are re-queued under the new incarnation's
      {e epoch} with fresh sequence numbers but their original stable
      mids, so receivers deduplicate re-sends and reject the previous
      life's retransmits;
    + the crash is reported as a {e metric} failure notice — updates
      arrive late, never never — which also serves as the sign of life
      that makes peers re-queue what they gave up sending here.

    Checkpoints ([Journal_with_checkpoint]) are taken on a periodic
    simulation timer per registered shell and freeze the derived state
    into the journal, bounding replay.  The derived state is a pure
    function of the journal, so replay-from-checkpoint and
    replay-from-origin agree by construction, and two replays of the
    same run are byte-identical. *)

type t

val create :
  sim:Cm_sim.Sim.t ->
  net:Msg.t Cm_net.Net.t ->
  ?reliable:Reliable.t ->
  journals:Journal.registry ->
  ?obs:Obs.t ->
  ?checkpoint_period:float ->
  Journal.durability ->
  t
(** [checkpoint_period] (default {!default_checkpoint_period}) only
    matters under [Journal_with_checkpoint].  [obs] receives
    [recovery_crashes], [recovery_restarts], [recovery_replayed_records]
    and [recovery_checkpoints] counters. *)

val default_checkpoint_period : float
(** 60 simulated seconds. *)

val mode : t -> Journal.durability
val journals : t -> Journal.registry

val register_shell : t -> Shell.t -> unit
(** Makes the shell's volatile state recoverable and, under
    [Journal_with_checkpoint], starts its periodic checkpoint timer
    (skipped while the site is down). *)

val crash : t -> site:string -> unit
(** Take the site's endpoint down ({!Cm_net.Net.crash_site}).  Volatile
    state is deliberately left in place until {!restart} wipes it — a
    real crash does not get to run code. *)

val restart : t -> site:string -> unit
(** The recovery protocol described above.  Safe for sites without a
    registered shell (transport-only endpoints): store restoration is
    skipped, transport recovery still runs. *)

val checkpoint_now : t -> site:string -> unit
(** Freeze the journal-derived state into a [Checkpoint] record now —
    the periodic timer uses this; tests use it to place checkpoints at
    awkward instants (e.g. between the two halves of a firing). *)

type stats = {
  crashes : int;
  restarts : int;
  replayed_records : int;  (** records folded during restarts *)
  checkpoints : int;
}

val stats : t -> stats
