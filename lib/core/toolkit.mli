(** Configuration-driven system assembly.

    [build] turns a parsed {!Cmrid.t} into a live {!System.t}: one
    CM-Shell per declared site, a fresh Raw Information Source per
    [source] block (initialized by its [init] statements), a configured
    CM-Translator attached to each, and the item locator derived from
    the declarations.  This is the toolkit workflow of §4.1 end to end:
    after [build], query {!System.interface_rules} for what the sources
    offer, obtain candidates from {!Suggest.for_constraint}, and
    {!System.install} the chosen strategy. *)

type built = {
  system : System.t;
  shells : (string * Shell.t) list;  (** site → shell *)
  relational : (string * Tr_relational.t) list;  (** site → translator *)
  kvfiles : (string * Tr_kvfile.t) list;
  databases : (string * Cm_relational.Database.t) list;
  stores : (string * Cm_sources.Kvfile.t) list;
}

val build : ?config:System.Config.t -> Cmrid.t -> (built, string) result
(** Fails on unknown sites in [location] lines, bad SQL in item
    templates or [init] statements, and duplicate item bases.  The
    {!System.Config.t} (default {!System.Config.default}) carries the
    seed, network latency/fault model, optional reliable-delivery layer,
    and optional observability registry (see {!System.create}). *)

val interface_summary : built -> (string * string list) list
(** For each item base, the interface kinds its translator reports —
    input for {!Suggest.for_constraint}. *)
