module Sim = Cm_sim.Sim
module Kvfile = Cm_sources.Kvfile
module Health = Cm_sources.Health
open Cm_rule

type item_binding = {
  base : string;
  params : string list;
  key_template : string;
  writable : bool;
}

type t = {
  sim : Sim.t;
  fs : Kvfile.t;
  site : string;
  emit : Cmi.emit;
  report : Cmi.failure_report;
  latency : float;
  delta : float;
  bindings : (string, item_binding) Hashtbl.t;
}

let health t = Kvfile.health t.fs

let substitute template names values =
  let buf = Buffer.create (String.length template) in
  let n = String.length template in
  let i = ref 0 in
  while !i < n do
    if template.[!i] = '$' then begin
      incr i;
      let start = !i in
      while
        !i < n
        && (let c = template.[!i] in
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
            || c = '_')
      do
        incr i
      done;
      let name = String.sub template start (!i - start) in
      match List.assoc_opt name (List.combine names values) with
      | Some (Value.Str s) -> Buffer.add_string buf s
      | Some v -> Buffer.add_string buf (Value.to_string v)
      | None -> invalid_arg ("Tr_kvfile: unbound key parameter $" ^ name)
    end
    else begin
      Buffer.add_char buf template.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let key_of t (item : Item.t) =
  match Hashtbl.find_opt t.bindings item.Item.base with
  | None -> None
  | Some b -> Some (substitute b.key_template b.params item.Item.params)

let decode data = Option.value (Value.of_string_literal data) ~default:(Value.Str data)

let encode = function
  | Value.Str s -> s
  | v -> Value.to_string v

let current_value t item =
  if Health.mode (health t) = Health.Down then None
  else
    match key_of t item with
    | None -> None
    | Some key -> Option.map decode (Kvfile.read t.fs key)

let rule_id t base kind = Printf.sprintf "%s/%s/%s" t.site base kind

let interface_rules t =
  Hashtbl.fold
    (fun base b acc ->
      let pattern = Interface.family base b.params in
      let rules =
        Interface.read ~id:(rule_id t base "read") ~delta:t.delta pattern
        ::
        (if b.writable then
           [
             Interface.write ~id:(rule_id t base "write") ~delta:t.delta pattern;
             Interface.delete ~id:(rule_id t base "delete") ~delta:t.delta pattern;
           ]
         else [])
      in
      rules @ acc)
    t.bindings []
  |> List.sort (fun a b -> compare a.Rule.id b.Rule.id)

let down t =
  if Health.mode (health t) = Health.Down then begin
    t.report Msg.Logical;
    true
  end
  else false

let delayed t perform =
  let delay = t.latency +. Health.extra_latency (health t) in
  Sim.schedule t.sim ~delay (fun () ->
      perform ();
      if delay > t.delta then t.report Msg.Metric)

let request t desc ~kind =
  let event = t.emit desc ~kind in
  match desc.Event.name, desc.Event.args with
  | "WR", [ Event.Ai item; Event.Av v ] -> (
    if not (down t) then
      match Hashtbl.find_opt t.bindings item.Item.base, key_of t item with
      | Some { writable = true; _ }, Some key ->
        let provenance =
          Event.Generated
            { rule_id = rule_id t item.Item.base "write"; trigger = event.Event.id }
        in
        delayed t (fun () ->
            if Health.mode (health t) = Health.Down then t.report Msg.Logical
            else begin
              Kvfile.write t.fs key (encode v);
              ignore (t.emit (Event.w item v) ~kind:provenance)
            end)
      | _ ->
        Logs.err (fun m ->
            m "translator %s: no write interface for %s" t.site (Item.to_string item)))
  | "RR", [ Event.Ai item ] -> (
    if not (down t) then
      match current_value t item with
      | None -> ()
      | Some v ->
        let provenance =
          Event.Generated
            { rule_id = rule_id t item.Item.base "read"; trigger = event.Event.id }
        in
        delayed t (fun () -> ignore (t.emit (Event.r item v) ~kind:provenance)))
  | "DR", [ Event.Ai item ] -> (
    if not (down t) then
      match Hashtbl.find_opt t.bindings item.Item.base, key_of t item with
      | Some { writable = true; _ }, Some key ->
        let provenance =
          Event.Generated
            { rule_id = rule_id t item.Item.base "delete"; trigger = event.Event.id }
        in
        delayed t (fun () ->
            if Health.mode (health t) = Health.Down then t.report Msg.Logical
            else begin
              ignore (Kvfile.remove t.fs key);
              ignore (t.emit (Event.del item) ~kind:provenance)
            end)
      | _ ->
        Logs.err (fun m ->
            m "translator %s: no delete interface for %s" t.site (Item.to_string item)))
  | name, _ ->
    Logs.err (fun m -> m "translator %s: unsupported request %s" t.site name)

let create ~sim ~fs ~site ~emit ~report ?(latency = 0.1) ?delta bindings =
  let delta = Option.value delta ~default:(latency *. 5.0) in
  let table = Hashtbl.create 8 in
  List.iter
    (fun b ->
      if Hashtbl.mem table b.base then
        invalid_arg ("Tr_kvfile: duplicate binding for " ^ b.base);
      Hashtbl.replace table b.base b)
    bindings;
  { sim; fs; site; emit; report; latency; delta; bindings = table }

let cmi t =
  {
    Cmi.site = t.site;
    name = "kvfile";
    owns = Hashtbl.mem t.bindings;
    bases =
      List.sort String.compare
        (Hashtbl.fold (fun base _ acc -> base :: acc) t.bindings []);
    interface_rules = (fun () -> interface_rules t);
    current_value = current_value t;
    request = request t;
  }

let write_app t item v =
  match key_of t item with
  | None -> invalid_arg ("Tr_kvfile.write_app: unknown item " ^ Item.to_string item)
  | Some key ->
    let old = Option.map decode (Kvfile.read t.fs key) in
    Kvfile.write t.fs key (encode v);
    ignore
      (t.emit (Event.ws ?old:(Some (Option.value old ~default:Value.Null)) item v)
         ~kind:Event.Spontaneous)

let remove_app t item =
  match key_of t item with
  | None -> invalid_arg ("Tr_kvfile.remove_app: unknown item " ^ Item.to_string item)
  | Some key ->
    ignore (Kvfile.remove t.fs key);
    ignore (t.emit (Event.del item) ~kind:Event.Spontaneous)
