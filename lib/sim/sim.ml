type time = float

(* [live] lets {!pending} exclude queue entries that are already known
   to be no-ops: a cancelled periodic's next tick stays in the heap
   until its time comes, but it is not pending work. *)
type entry = { at : time; seq : int; live : unit -> bool; action : unit -> unit }

let always_live () = true

type t = {
  mutable clock : time;
  mutable seq : int;
  mutable processed : int;
  queue : entry Cm_util.Heap.t;
  rng : Cm_util.Prng.t;
}

exception Stop

let entry_leq a b = a.at < b.at || (a.at = b.at && a.seq <= b.seq)

let create ?(seed = 42) () =
  {
    clock = 0.0;
    seq = 0;
    processed = 0;
    queue = Cm_util.Heap.create ~leq:entry_leq;
    rng = Cm_util.Prng.create ~seed;
  }

let now t = t.clock
let rng t = t.rng

let enqueue t at ~live action =
  let at = if at < t.clock then t.clock else at in
  t.seq <- t.seq + 1;
  Cm_util.Heap.add t.queue { at; seq = t.seq; live; action }

let schedule_at t at action = enqueue t at ~live:always_live action

let schedule t ~delay action =
  let delay = if delay < 0.0 then 0.0 else delay in
  schedule_at t (t.clock +. delay) action

let every t ?start ~period action ~cancel =
  if period <= 0.0 then invalid_arg "Sim.every: period must be positive";
  let first = match start with Some s -> s | None -> t.clock +. period in
  let live () = not (cancel ()) in
  let rec tick () =
    if not (cancel ()) then begin
      action ();
      enqueue t (t.clock +. period) ~live tick
    end
  in
  enqueue t first ~live tick

let step t =
  match Cm_util.Heap.pop t.queue with
  | None -> false
  | Some e ->
    t.clock <- e.at;
    t.processed <- t.processed + 1;
    e.action ();
    true

let run ?until t =
  let continue () =
    match Cm_util.Heap.min t.queue with
    | None -> false
    | Some e -> (
      match until with
      | Some horizon when e.at > horizon ->
        t.clock <- horizon;
        false
      | _ -> true)
  in
  try
    while continue () do
      ignore (step t)
    done;
    match until with
    | Some horizon when t.clock < horizon && Cm_util.Heap.is_empty t.queue ->
      t.clock <- horizon
    | _ -> ()
  with Stop -> ()

let advance ?(inclusive = false) t ~until =
  let continue () =
    match Cm_util.Heap.min t.queue with
    | None -> false
    | Some e -> if inclusive then e.at <= until else e.at < until
  in
  (try
     while continue () do
       ignore (step t)
     done
   with Stop -> ());
  if t.clock < until then t.clock <- until

let next_at t = Option.map (fun e -> e.at) (Cm_util.Heap.min t.queue)

let pending t =
  Cm_util.Heap.fold (fun n e -> if e.live () then n + 1 else n) 0 t.queue
let events_processed t = t.processed
