(** Discrete-event simulation kernel.

    The toolkit's formal framework (paper, Appendix A) reasons about events
    in global physical time.  Running the whole system — information
    sources, translators, CM-Shells, network, applications — inside one
    deterministic simulated clock makes that reasoning premise literally
    true, so metric guarantees (time bounds δ, κ) can be checked exactly.

    Executions are fully deterministic: callbacks scheduled for the same
    instant run in scheduling order (a sequence number breaks ties), and
    all randomness must come from {!rng}. *)

type t

type time = float
(** Simulated seconds since the start of the run. *)

val create : ?seed:int -> unit -> t
(** Fresh simulator at time 0.  [seed] (default 42) seeds {!rng}. *)

val now : t -> time

val rng : t -> Cm_util.Prng.t
(** The root generator.  Long-lived components should [Prng.split] their
    own stream from it at set-up time. *)

exception Stop
(** Raise from within a callback to end {!run} early. *)

val schedule : t -> delay:time -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at time [now t +. delay].  Negative
    delays are clamped to 0 (immediate, but still queued after already
    pending work at the current instant). *)

val schedule_at : t -> time -> (unit -> unit) -> unit
(** Absolute-time variant.  Times before [now] are clamped to [now]. *)

val every : t -> ?start:time -> period:time -> (unit -> unit) -> cancel:(unit -> bool) -> unit
(** [every t ~period f ~cancel] runs [f] at [start] (default [now + period])
    and then every [period] simulated seconds, until [cancel ()] returns
    [true] (checked before each occurrence).  Implements the paper's
    periodic events [P(p)]. *)

val run : ?until:time -> t -> unit
(** Process queued events in time order.  Stops when the queue drains, when
    the next event would exceed [until] (clock then advances to [until]),
    or when a callback raises {!Stop}. *)

val step : t -> bool
(** Process exactly one queued event.  [false] if the queue was empty. *)

val advance : ?inclusive:bool -> t -> until:time -> unit
(** Conservative-window variant of {!run}: process events strictly
    before [until] ([inclusive] adds the boundary instant itself), then
    set the clock to [until] even if later events remain queued.  This
    is the lookahead horizon of the sharded executor — a shard whose
    peers cannot affect it before [until] runs its wheel up to that
    horizon and then waits for the cross-shard exchange; events at or
    beyond the horizon stay queued for later windows.  Honors {!Stop}. *)

val next_at : t -> time option
(** Time of the earliest queued event ([None] on an empty queue) —
    including entries whose [live] predicate already returns [false],
    which occupy the wheel until their instant.  The sharded executor's
    quiescence test. *)

val pending : t -> int
(** Number of queued events that will still do work: a periodic re-arm
    whose [cancel] already returns [true] sits in the queue until its
    time comes but is {e not} counted.  O(queue) — a diagnostic, not a
    hot-path call. *)

val events_processed : t -> int
(** Total callbacks executed so far — used by throughput benchmarks. *)
