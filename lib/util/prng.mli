(** Deterministic pseudo-random number generator (splitmix64).

    All randomness in the toolkit flows through values of type {!t} so that
    every simulation run is reproducible from a single integer seed.  The
    generator is intentionally not shared with [Stdlib.Random]: experiments
    must not be perturbed by library code drawing from a global state. *)

type t

val create : seed:int -> t
(** [create ~seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val of_key : seed:int -> string -> t
(** [of_key ~seed key] is a generator whose stream is a pure function of
    [(seed, key)] — no ambient state, no splitting order.  Used where
    draws must not depend on how a run is partitioned: the sharded
    executor keys one stream per network link (and per workload tag) so
    every shard layout of one simulation sees the same draws in the same
    per-key order. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream.  Used to
    give each workload generator its own stream so that adding one
    generator does not shift the draws of another. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed draw with the given mean; used for Poisson
    arrival processes in workloads.  [mean] must be positive. *)

val uniform_in : t -> lo:float -> hi:float -> float

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array.  @raise Invalid_argument on an
    empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
