(* Small graph algorithms shared by the static analyses.

   The only resident so far is Tarjan's strongly-connected-components
   algorithm, extracted from the CON conflict pass so the chase-based
   dependency analysis can reuse the exact same machinery on its
   position and interaction graphs. *)

let sccs n succs =
  let index = Array.make n (-1) in
  let low = Array.make n 0 in
  let onstack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let comps = ref [] in
  let rec connect v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    onstack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          connect w;
          low.(v) <- min low.(v) low.(w)
        end
        else if onstack.(w) then low.(v) <- min low.(v) index.(w))
      (succs v);
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
          stack := rest;
          onstack.(w) <- false;
          if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      comps := pop [] :: !comps
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then connect v
  done;
  !comps

let cyclic succs comp =
  match comp with
  | [ v ] -> List.mem v (succs v)
  | _ :: _ :: _ -> true
  | [] -> false
