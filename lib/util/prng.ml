type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

(* FNV-1a over the key bytes, folded into the seed.  Hand-rolled (not
   Hashtbl.hash) so the mapping key -> stream is fixed by this file
   alone: streams derived from equal (seed, key) pairs are identical in
   every process, which is what lets two differently-sharded executions
   of one simulation agree on every draw. *)
let of_key ~seed key =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    key;
  { state = Int64.add (Int64.of_int seed) !h }

let copy t = { state = t.state }

(* splitmix64 finalizer: Steele, Lea & Flood, "Fast splittable pseudorandom
   number generators", OOPSLA 2014. *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int, non-negative. *)
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

let float t bound =
  (* 53 high bits, as in the standard double construction. *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Prng.exponential: mean must be positive";
  let u = ref (float t 1.0) in
  while !u = 0.0 do u := float t 1.0 done;
  -. mean *. log !u

let uniform_in t ~lo ~hi = lo +. float t (hi -. lo)

let pick t a =
  if Array.length a = 0 then invalid_arg "Prng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
