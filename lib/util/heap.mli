(** Leftist min-heap, the priority queue behind the simulation kernel.

    Purely functional internally but wrapped in a mutable handle for
    convenient imperative use by the event loop.  Ordering is supplied at
    creation time; for equal priorities the heap is *not* stable — callers
    needing deterministic tie-breaking (the simulator does) must encode a
    sequence number into the priority. *)

type 'a t

val create : leq:('a -> 'a -> bool) -> 'a t
(** [create ~leq] is an empty heap ordered by [leq] (total preorder;
    [leq a b] means [a] has priority at least as high as [b]). *)

val is_empty : 'a t -> bool
val size : 'a t -> int

val add : 'a t -> 'a -> unit

val min : 'a t -> 'a option
(** Smallest element, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit

val of_list : leq:('a -> 'a -> bool) -> 'a list -> 'a t

val to_sorted_list : 'a t -> 'a list
(** Drains the heap.  The heap is empty afterwards. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
(** Fold over every element without disturbing the heap.  Traversal
    order is unspecified — use only order-insensitive accumulators. *)
