let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (sq /. float_of_int (List.length xs))

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    (* Nearest rank is ceil(p*n), except that the product must be treated
       as exact when it is within float noise of an integer — otherwise
       e.g. 0.95 *. 20. = 19.000000000000004 rounds up to rank 20, one
       past the nearest-rank answer (and p = 1.0 on a one-element list
       drifts past the only rank there is). *)
    let exact = p *. float_of_int n in
    let nearest = Float.round exact in
    let rank =
      if Float.abs (exact -. nearest) <= 1e-9 *. float_of_int n then
        int_of_float nearest
      else int_of_float (ceil exact)
    in
    let rank = max 1 (min n rank) in
    List.nth sorted (rank - 1)

let min_max = function
  | [] -> (0.0, 0.0)
  | x :: rest ->
    List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) rest

type summary = {
  n : int;
  mean : float;
  stddev : float;
  p50 : float;
  p95 : float;
  min : float;
  max : float;
}

let summary xs =
  let lo, hi = min_max xs in
  {
    n = List.length xs;
    mean = mean xs;
    stddev = stddev xs;
    p50 = percentile 0.5 xs;
    p95 = percentile 0.95 xs;
    min = lo;
    max = hi;
  }

let histogram ~buckets xs =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets must be positive";
  match xs with
  | [] -> []
  | _ ->
    let lo, hi = min_max xs in
    let width = if hi = lo then 1.0 else (hi -. lo) /. float_of_int buckets in
    let counts = Array.make buckets 0 in
    let place x =
      let i = int_of_float ((x -. lo) /. width) in
      let i = max 0 (min (buckets - 1) i) in
      counts.(i) <- counts.(i) + 1
    in
    List.iter place xs;
    List.init buckets (fun i ->
        (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width), counts.(i)))
