(** Small graph algorithms shared by the static analyses. *)

val sccs : int -> (int -> int list) -> int list list
(** [sccs n succs] returns the strongly connected components of the
    directed graph over vertices [0 .. n-1] with successor function
    [succs] (Tarjan's algorithm).  Each component lists its vertices in
    discovery order; components appear in reverse topological order of
    the condensation.  Deterministic for a fixed [succs]. *)

val cyclic : (int -> int list) -> int list -> bool
(** [cyclic succs comp] holds when the component [comp] (as returned by
    {!sccs}) actually contains a cycle: it has at least two vertices, or
    its single vertex has a self-edge. *)
