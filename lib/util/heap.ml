type 'a node =
  | Leaf
  | Node of { rank : int; value : 'a; left : 'a node; right : 'a node }

type 'a t = { leq : 'a -> 'a -> bool; mutable root : 'a node; mutable size : int }

let create ~leq = { leq; root = Leaf; size = 0 }

let is_empty t = t.size = 0
let size t = t.size

let rank = function Leaf -> 0 | Node { rank; _ } -> rank

let make value a b =
  (* Leftist property: rank of left child >= rank of right child. *)
  if rank a >= rank b then Node { rank = rank b + 1; value; left = a; right = b }
  else Node { rank = rank a + 1; value; left = b; right = a }

let rec merge leq a b =
  match a, b with
  | Leaf, n | n, Leaf -> n
  | Node na, Node nb ->
    if leq na.value nb.value then make na.value na.left (merge leq na.right b)
    else make nb.value nb.left (merge leq nb.right a)

let add t x =
  t.root <- merge t.leq t.root (Node { rank = 1; value = x; left = Leaf; right = Leaf });
  t.size <- t.size + 1

let min t = match t.root with Leaf -> None | Node { value; _ } -> Some value

let pop t =
  match t.root with
  | Leaf -> None
  | Node { value; left; right; _ } ->
    t.root <- merge t.leq left right;
    t.size <- t.size - 1;
    Some value

let clear t =
  t.root <- Leaf;
  t.size <- 0

let fold f acc t =
  let rec go acc = function
    | Leaf -> acc
    | Node { value; left; right; _ } -> go (go (f acc value) left) right
  in
  go acc t.root

let of_list ~leq xs =
  let t = create ~leq in
  List.iter (add t) xs;
  t

let to_sorted_list t =
  let rec drain acc = match pop t with None -> List.rev acc | Some x -> drain (x :: acc) in
  drain []
