(** Small numeric summaries used by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0.0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0.0 on lists shorter than 2. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,1\]], nearest-rank on the sorted
    list; 0.0 on the empty list. *)

val min_max : float list -> float * float
(** (min, max); (0., 0.) on the empty list. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  p50 : float;
  p95 : float;
  min : float;
  max : float;
}

val summary : float list -> summary
(** One-shot numeric summary of a sample; all fields 0 on the empty
    list.  Used by the observability layer to export recorded series. *)

val histogram : buckets:int -> float list -> (float * float * int) list
(** [histogram ~buckets xs] returns [(lo, hi, count)] triples covering
    the data range with equal-width buckets. *)
