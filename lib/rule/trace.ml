type t = {
  mutable rev_events : Event.t list;
  mutable count : int;
  mutable next_id : int;
  stride : int;
  mutable last : float;
  mutable hooks : (Event.t -> unit) list;  (* registration order *)
}

let create ?(first_id = 0) ?(stride = 1) () =
  if stride <= 0 then invalid_arg "Trace.create: stride must be positive";
  { rev_events = []; count = 0; next_id = first_id; stride; last = 0.0; hooks = [] }

let on_record t f = t.hooks <- t.hooks @ [ f ]

let record t ~time ~site ?(kind = Event.Spontaneous) desc =
  if time < t.last then
    invalid_arg
      (Printf.sprintf "Trace.record: time %g precedes last event at %g" time t.last);
  let e = { Event.id = t.next_id; time; site; desc; kind } in
  t.rev_events <- e :: t.rev_events;
  t.count <- t.count + 1;
  t.next_id <- t.next_id + t.stride;
  t.last <- time;
  (match t.hooks with
  | [] -> ()
  | hooks -> List.iter (fun f -> f e) hooks);
  e

let events t = List.rev t.rev_events

let length t = t.count

let find t id =
  if id < 0 || id >= t.next_id then None
  else List.find_opt (fun e -> e.Event.id = id) t.rev_events

let named t name =
  List.rev
    (List.filter (fun e -> String.equal e.Event.desc.Event.name name) t.rev_events)

let on_item t item =
  let has e =
    match Event.item_of_desc e.Event.desc with
    | Some i -> Item.equal i item
    | None -> false
  in
  List.rev (List.filter has t.rev_events)

let last_time t = t.last

let pp fmt t =
  List.iter (fun e -> Format.fprintf fmt "%s@." (Event.to_string e)) (events t)

let to_string t = Format.asprintf "%a" pp t
