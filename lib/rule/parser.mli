(** Recursive-descent parser for the textual rule language.

    Concrete syntax, mirroring the paper's notation:

    {v
    # interfaces (§3.1.1)
    write_if:  WR(X, b) ->[5] W(X, b)
    no_spont:  Ws(X, b) -> FALSE
    notify:    Ws(X, b) ->[2] N(X, b)
    cond_ntf:  Ws(X, a, b) && |b - a| > 0.1 * a ->[2] N(X, b)
    per_ntf:   P(300) && X == b ->[1] N(X, b)
    read_if:   RR(X) && X == b ->[1] R(X, b)
    param:     Ws(Phone(n), b) ->[2] N(Phone(n), b)

    # strategies (§3.2)
    prop:      N(Salary1(n), b) ->[5] WR(Salary2(n), b)
    cached:    N(X, b) ->[5] (Cx != b) ? WR(Y, b), W(Cx, b)
    poll:      P(60) ->[1] RR(X)
    fwd:       R(X, b) ->[1] WR(Y, b)
    v}

    Rules are self-delimiting; an optional [label:] prefix names a rule.
    [->[d]] gives the time bound δ in seconds; a bare [->] means no bound
    (δ = ∞).  Right-hand-side step guards must be parenthesized:
    [(cond) ? Template].  Identifiers beginning with an upper-case letter
    are data items; [true], [false] and [null] are constants; [E(Item)]
    is the existence predicate.  [#] comments run to end of line. *)

exception Parse_error of { pos : int; line : int; message : string }
(** [pos] is a token index into the token stream (0-based); [line] is the
    1-based source line of the offending token. *)

val parse_rules : string -> Rule.t list
(** Parse a whole rule file.  @raise Parse_error *)

val parse_rules_located : string -> (Rule.t * int) list
(** Like {!parse_rules}, pairing each rule with the 1-based source line
    its first token starts on — the anchor for [file:line] diagnostics.
    @raise Parse_error *)

val parse_program : string -> (Rule.t * int) list * (int * string) option
(** Best-effort variant for diagnostics: the rules successfully parsed
    before the first syntax error, plus that error's (line, message) if
    one occurred.  Never raises. *)

val parse_rule : string -> Rule.t
(** Parse exactly one rule.  @raise Parse_error if input remains. *)

val parse_expr : string -> Expr.t
(** Parse a condition/expression. *)

val parse_template : string -> Template.t
