(** Rule/event discrimination index: the shell's hot dispatch path.

    Every event a CM-Shell records is matched against the strategy rules
    whose LHS site the shell handles.  The naive implementation is a
    linear scan — each event touches every installed rule, so matching
    cost grows with sites x constraints even though an event can only
    ever match rules whose LHS template carries its descriptor name,
    whose LHS site is the event's site, and (when the template's first
    argument is an item pattern) whose item base is the event's first
    argument's base.  This index buckets rules by exactly that
    (LHS site, event kind, base name) triple, so {!select} touches only
    the candidate rules.

    Appendix A.1 semantics only constrains {e which} rules match and in
    {e what order} their firings appear, so the index must be — and is —
    observationally equivalent to the scan: {!select} returns a
    subsequence of {!select_naive} that is guaranteed to contain every
    entry whose template can match the event, in the same (installation)
    order.  [select_naive] is retained as the oracle for the
    differential test harness and the E15 benchmark, not as a fallback.

    Site discipline (paper §4.1 rule distribution): an entry installed
    with [site = Some s] is a candidate for events occurring at [s]; an
    entry with [site = None] (a pure chaining rule mentioning no item) is
    a candidate only for events at the shell's own site, which callers
    pass as [local_site].

    Base discipline: a template whose first argument is
    [Expr.Item (b, _)] can only match descriptors whose first argument
    is an item with base [b] ({!Template.matches} fails the position-0
    comparison otherwise), so such entries live in a per-base bucket
    consulted only for events carrying that base.  Templates with any
    other first argument stay in a base-free bucket that is a candidate
    for every event with the template's name. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> lhs:Template.t -> site:Item.site option -> 'a -> unit
(** Register a payload under the LHS template [lhs]'s discrimination key
    and resolved LHS [site].  Entries are returned by {!select} /
    {!select_naive} in registration order. *)

val remove : 'a t -> lhs:Template.t -> site:Item.site option -> ('a -> bool) -> bool
(** Unregister the most recently registered live entry under [lhs]'s
    discrimination key and [site] whose payload satisfies the predicate.
    O(bucket): the discrimination bucket is filtered in place and the
    registration list keeps a tombstone that is compacted once
    tombstones outnumber live entries, so rule churn never reintroduces
    an O(all rules) rebuild.  Returns [false] if no live entry under
    that key matches. *)

val select :
  'a t ->
  local_site:Item.site ->
  event_site:Item.site ->
  desc:Event.desc ->
  'a list
(** Candidate payloads for an event [desc] occurring at [event_site], in
    registration order: the site buckets for [event_site] (base-specific
    and base-free) merged with the chaining buckets when [event_site] is
    [local_site].  O(candidates), independent of the total number of
    registered rules.  Every registered entry whose template matches
    [desc] under the site discipline is included; entries whose name or
    position-0 base rule out a match are skipped. *)

val select_naive :
  'a t -> local_site:Item.site -> event_site:Item.site -> 'a list
(** The retained oracle: a linear scan over every registered entry
    applying only the site filter (name and base discrimination are left
    to the caller's template matching, exactly as the pre-index shell
    did).  O(registered rules).  [select] followed by template matching
    must produce the same matches in the same order as [select_naive]
    followed by template matching — the differential test suite holds
    the two paths to that. *)

val length : 'a t -> int
(** Live (registered and not removed) entries. *)

val bucket_stats : 'a t -> int * int
(** [(buckets, largest)]: number of non-empty discrimination buckets and
    the size of the largest one — the index's worst-case candidate list.
    For benchmark reporting. *)
