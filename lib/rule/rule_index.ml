(* Entries carry a global registration sequence number so that a select
   over several buckets (site-specific and local/chaining, base-specific
   and base-free) can reproduce the exact interleaving a linear scan over
   the registration list would produce.  Buckets are kept newest-first
   (cheap prepend); select merges them by descending seq and accumulates,
   yielding ascending (registration) order. *)

type 'a entry = {
  seq : int;
  site : Item.site option;
  mutable live : bool;
  payload : 'a;
}

(* Discrimination on the first template argument: [Expr.Item (b, _)] at
   position 0 matches only events whose first argument is an item with
   base [b] (see Template.match_arg), so such templates go in the
   [Some b] bucket.  Any other first argument (or no arguments) leaves
   the template a candidate for every event with its name. *)
let arg0_base (tpl : Template.t) =
  match tpl.Template.args with
  | Expr.Item (base, _) :: _ -> Some base
  | _ -> None

let event_arg0_base (desc : Event.desc) =
  match desc.Event.args with
  | Event.Ai item :: _ -> Some item.Item.base
  | _ -> None

type 'a t = {
  mutable next_seq : int;
  mutable live_count : int;
  mutable dead : int;  (* tombstones still present in rev_all *)
  mutable rev_all : 'a entry list;  (* every entry, newest first *)
  sited : (Item.site * string * string option, 'a entry list) Hashtbl.t;
      (* (LHS site, descriptor name, arg0 base) -> entries, newest first *)
  local : (string * string option, 'a entry list) Hashtbl.t;
      (* (descriptor name, arg0 base) -> site-free (chaining) entries *)
}

let create () =
  {
    next_seq = 0;
    live_count = 0;
    dead = 0;
    rev_all = [];
    sited = Hashtbl.create 64;
    local = Hashtbl.create 8;
  }

let push table key entry =
  let prior = Option.value (Hashtbl.find_opt table key) ~default:[] in
  Hashtbl.replace table key (entry :: prior)

let bucket table key = Option.value (Hashtbl.find_opt table key) ~default:[]

let add t ~lhs ~site payload =
  let entry = { seq = t.next_seq; site; live = true; payload } in
  t.next_seq <- t.next_seq + 1;
  t.live_count <- t.live_count + 1;
  t.rev_all <- entry :: t.rev_all;
  let name = lhs.Template.name in
  let base = arg0_base lhs in
  match site with
  | Some s -> push t.sited (s, name, base) entry
  | None -> push t.local (name, base) entry

(* Removal is incremental: the discrimination bucket drops the entry
   (O(bucket), not O(rules)), while [rev_all] keeps a tombstone that the
   naive oracle skips.  Tombstones are compacted once they outnumber the
   live entries, keeping [select_naive] amortized O(live). *)
let remove t ~lhs ~site pred =
  let name = lhs.Template.name in
  let base = arg0_base lhs in
  let found = ref None in
  let filter_bucket entries =
    List.filter
      (fun e ->
        if Option.is_none !found && e.live && pred e.payload then begin
          found := Some e;
          false
        end
        else true)
      entries
  in
  let update table key =
    match filter_bucket (bucket table key) with
    | [] -> if Option.is_some !found then Hashtbl.remove table key
    | filtered -> if Option.is_some !found then Hashtbl.replace table key filtered
  in
  (match site with
  | Some s -> update t.sited (s, name, base)
  | None -> update t.local (name, base));
  match !found with
  | None -> false
  | Some e ->
    e.live <- false;
    t.live_count <- t.live_count - 1;
    t.dead <- t.dead + 1;
    if t.dead > t.live_count && t.dead > 16 then begin
      t.rev_all <- List.filter (fun e -> e.live) t.rev_all;
      t.dead <- 0
    end;
    true

(* Merge two newest-first entry lists, newest first.  Candidate buckets
   are small, so the non-tail recursion is fine. *)
let rec merge2 a b =
  match a, b with
  | [], rest | rest, [] -> rest
  | x :: xs, y :: ys ->
    if x.seq > y.seq then x :: merge2 xs b else y :: merge2 a ys

let select t ~local_site ~event_site ~(desc : Event.desc) =
  let name = desc.Event.name in
  let base = event_arg0_base desc in
  let sited_free = bucket t.sited (event_site, name, None) in
  let sited_based =
    match base with
    | Some _ -> bucket t.sited (event_site, name, base)
    | None -> []
  in
  let is_local = String.equal event_site local_site in
  let local_free = if is_local then bucket t.local (name, None) else [] in
  let local_based =
    match base with
    | Some _ when is_local -> bucket t.local (name, base)
    | _ -> []
  in
  let merged =
    merge2 (merge2 sited_free sited_based) (merge2 local_free local_based)
  in
  (* Descending-seq entries folded with prepend: ascending payloads. *)
  List.fold_left (fun acc e -> e.payload :: acc) [] merged

let select_naive t ~local_site ~event_site =
  List.fold_left
    (fun acc entry ->
      let site_matches =
        match entry.site with
        | Some s -> String.equal s event_site
        | None -> String.equal event_site local_site
      in
      if entry.live && site_matches then entry.payload :: acc else acc)
    [] t.rev_all

let length t = t.live_count

let bucket_stats t =
  let fold table (buckets, largest) =
    Hashtbl.fold
      (fun _ entries (b, l) ->
        match entries with [] -> (b, l) | _ -> (b + 1, max l (List.length entries)))
      table (buckets, largest)
  in
  fold t.sited (fold t.local (0, 0))
