exception Parse_error of { pos : int; line : int; message : string }

type stream = { tokens : Lexer.token array; lines : int array; mutable pos : int }

let line_at st =
  if Array.length st.lines = 0 then 1
  else st.lines.(min st.pos (Array.length st.lines - 1))

let error st fmt =
  Printf.ksprintf
    (fun message -> raise (Parse_error { pos = st.pos; line = line_at st; message }))
    fmt

let peek st = st.tokens.(st.pos)

let peek2 st =
  if st.pos + 1 < Array.length st.tokens then st.tokens.(st.pos + 1) else Lexer.EOF

let advance st = st.pos <- st.pos + 1

let expect st token what =
  if peek st = token then advance st
  else error st "expected %s, found %s" what (Lexer.token_to_string (peek st))

let is_upper_ident s = String.length s > 0 && s.[0] >= 'A' && s.[0] <= 'Z'

(* ---- expressions ---------------------------------------------------- *)

let rec parse_or st =
  let left = parse_and st in
  if peek st = Lexer.OROR then begin
    advance st;
    Expr.Binop (Expr.Or, left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_cmp st in
  if peek st = Lexer.ANDAND then begin
    advance st;
    Expr.Binop (Expr.And, left, parse_and st)
  end
  else left

and parse_cmp st =
  let left = parse_add st in
  let op =
    match peek st with
    | Lexer.EQ -> Some Expr.Eq
    | Lexer.NE -> Some Expr.Ne
    | Lexer.LT -> Some Expr.Lt
    | Lexer.LE -> Some Expr.Le
    | Lexer.GT -> Some Expr.Gt
    | Lexer.GE -> Some Expr.Ge
    | _ -> None
  in
  match op with
  | None -> left
  | Some op ->
    advance st;
    Expr.Binop (op, left, parse_add st)

and parse_add st =
  let rec loop left =
    match peek st with
    | Lexer.PLUS ->
      advance st;
      loop (Expr.Binop (Expr.Add, left, parse_mul st))
    | Lexer.MINUS ->
      advance st;
      loop (Expr.Binop (Expr.Sub, left, parse_mul st))
    | _ -> left
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop left =
    match peek st with
    | Lexer.STAR ->
      advance st;
      loop (Expr.Binop (Expr.Mul, left, parse_unary st))
    | Lexer.SLASH ->
      advance st;
      loop (Expr.Binop (Expr.Div, left, parse_unary st))
    | _ -> left
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.MINUS ->
    advance st;
    Expr.Unop (Expr.Neg, parse_unary st)
  | Lexer.BANG ->
    advance st;
    Expr.Unop (Expr.Not, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | Lexer.NUMBER v ->
    advance st;
    Expr.Const v
  | Lexer.STRING s ->
    advance st;
    Expr.Const (Value.Str s)
  | Lexer.PIPE ->
    advance st;
    let inner = parse_or st in
    expect st Lexer.PIPE "closing |";
    Expr.Unop (Expr.Abs, inner)
  | Lexer.LPAREN ->
    advance st;
    let inner = parse_or st in
    expect st Lexer.RPAREN ")";
    inner
  | Lexer.IDENT "true" ->
    advance st;
    Expr.Const (Value.Bool true)
  | Lexer.IDENT "false" ->
    advance st;
    Expr.Const (Value.Bool false)
  | Lexer.IDENT "null" ->
    advance st;
    Expr.Const Value.Null
  | Lexer.IDENT "E" when peek2 st = Lexer.LPAREN ->
    advance st;
    advance st;
    let arg = parse_or st in
    expect st Lexer.RPAREN ")";
    (match arg with
     | Expr.Item (base, args) -> Expr.Exists (base, args)
     | other ->
       error st "E(...) expects a data item, found %s" (Expr.to_string other))
  | Lexer.IDENT name ->
    advance st;
    if peek st = Lexer.LPAREN && is_upper_ident name then begin
      advance st;
      let args = parse_expr_list st in
      expect st Lexer.RPAREN ")";
      Expr.Item (name, args)
    end
    else if is_upper_ident name then Expr.Item (name, [])
    else Expr.Var name
  | other -> error st "expected an expression, found %s" (Lexer.token_to_string other)

and parse_expr_list st =
  if peek st = Lexer.RPAREN then []
  else begin
    let first = parse_or st in
    let rec more acc =
      if peek st = Lexer.COMMA then begin
        advance st;
        more (parse_or st :: acc)
      end
      else List.rev acc
    in
    more [ first ]
  end

(* ---- templates ------------------------------------------------------ *)

let rec parse_template_arg st =
  match peek st with
  | Lexer.STAR ->
    advance st;
    Expr.Wildcard
  | Lexer.MINUS ->
    advance st;
    (match peek st with
     | Lexer.NUMBER v ->
       advance st;
       Expr.Const (Value.neg v)
     | other ->
       error st "expected a number after -, found %s" (Lexer.token_to_string other))
  | Lexer.NUMBER v ->
    advance st;
    Expr.Const v
  | Lexer.STRING s ->
    advance st;
    Expr.Const (Value.Str s)
  | Lexer.IDENT "true" ->
    advance st;
    Expr.Const (Value.Bool true)
  | Lexer.IDENT "false" ->
    advance st;
    Expr.Const (Value.Bool false)
  | Lexer.IDENT "null" ->
    advance st;
    Expr.Const Value.Null
  | Lexer.IDENT name ->
    advance st;
    if is_upper_ident name then begin
      if peek st = Lexer.LPAREN then begin
        advance st;
        let args = parse_template_args st in
        expect st Lexer.RPAREN ")";
        Expr.Item (name, args)
      end
      else Expr.Item (name, [])
    end
    else Expr.Var name
  | other ->
    error st "expected a template argument, found %s" (Lexer.token_to_string other)

and parse_template_args st =
  if peek st = Lexer.RPAREN then []
  else begin
    let first = parse_template_arg st in
    let rec more acc =
      if peek st = Lexer.COMMA then begin
        advance st;
        more (parse_template_arg st :: acc)
      end
      else List.rev acc
    in
    more [ first ]
  end

let parse_template_body st =
  match peek st with
  | Lexer.IDENT "FALSE" ->
    advance st;
    Template.false_
  | Lexer.IDENT name ->
    advance st;
    expect st Lexer.LPAREN "(";
    let args = parse_template_args st in
    expect st Lexer.RPAREN ")";
    (try Template.make name args
     with Invalid_argument message -> error st "%s" message)
  | other -> error st "expected an event template, found %s" (Lexer.token_to_string other)

(* ---- rules ----------------------------------------------------------- *)

let parse_delta st =
  if peek st = Lexer.LBRACKET then begin
    advance st;
    let v =
      match peek st with
      | Lexer.NUMBER v ->
        advance st;
        Value.to_float v
      | other -> error st "expected a time bound, found %s" (Lexer.token_to_string other)
    in
    expect st Lexer.RBRACKET "]";
    v
  end
  else infinity

let parse_step st =
  if peek st = Lexer.LPAREN then begin
    (* Parenthesized guard followed by '?'. *)
    advance st;
    let guard = parse_or st in
    expect st Lexer.RPAREN ")";
    expect st Lexer.QUESTION "?";
    { Rule.guard; template = parse_template_body st }
  end
  else { Rule.guard = Expr.Const (Value.Bool true); template = parse_template_body st }

let parse_one_rule st =
  (* Labels may contain '/' segments (generated interface ids look like
     "site/Base/kind"), so scan ahead: IDENT (/ IDENT)* ':' is a label. *)
  let label =
    let rec scan pos acc =
      if pos + 1 >= Array.length st.tokens then None
      else
        match st.tokens.(pos) with
        | Lexer.IDENT name -> (
          match st.tokens.(pos + 1) with
          | Lexer.COLON -> Some (pos + 2, acc ^ name)
          | Lexer.SLASH -> scan (pos + 2) (acc ^ name ^ "/")
          | _ -> None)
        | _ -> None
    in
    match peek st with
    | Lexer.IDENT _ -> (
      match scan st.pos "" with
      | Some (next, label) ->
        st.pos <- next;
        Some label
      | None -> None)
    | _ -> None
  in
  let lhs = parse_template_body st in
  let lhs_cond =
    if peek st = Lexer.ANDAND then begin
      advance st;
      parse_or st
    end
    else Expr.Const (Value.Bool true)
  in
  expect st Lexer.ARROW "->";
  let delta = parse_delta st in
  let rhs =
    if peek st = Lexer.IDENT "FALSE" then begin
      advance st;
      Rule.False
    end
    else begin
      let first = parse_step st in
      let rec more acc =
        if peek st = Lexer.COMMA then begin
          advance st;
          more (parse_step st :: acc)
        end
        else List.rev acc
      in
      Rule.Steps (more [ first ])
    end
  in
  try Rule.make ?id:label ~lhs_cond ~delta ~lhs rhs
  with Invalid_argument message -> error st "%s" message

let with_stream src f =
  let located =
    try Lexer.tokenize_located src
    with Lexer.Lex_error { pos; line; message } ->
      raise (Parse_error { pos; line; message })
  in
  f { tokens = Array.map fst located; lines = Array.map snd located; pos = 0 }

let parse_rules src =
  with_stream src (fun st ->
      let rec loop acc =
        if peek st = Lexer.EOF then List.rev acc else loop (parse_one_rule st :: acc)
      in
      loop [])

let parse_rules_located src =
  with_stream src (fun st ->
      let rec loop acc =
        if peek st = Lexer.EOF then List.rev acc
        else
          let line = line_at st in
          let rule = parse_one_rule st in
          loop ((rule, line) :: acc)
      in
      loop [])

let parse_program src =
  match
    with_stream src (fun st ->
        let rec loop acc =
          if peek st = Lexer.EOF then (List.rev acc, None)
          else
            let line = line_at st in
            match parse_one_rule st with
            | rule -> loop ((rule, line) :: acc)
            | exception Parse_error { line; message; _ } ->
              (List.rev acc, Some (line, message))
        in
        loop [])
  with
  | result -> result
  | exception Parse_error { line; message; _ } -> ([], Some (line, message))

let finish st parsed what =
  if peek st = Lexer.EOF then parsed
  else error st "trailing input after %s: %s" what (Lexer.token_to_string (peek st))

let parse_rule src = with_stream src (fun st -> finish st (parse_one_rule st) "rule")

let parse_expr src = with_stream src (fun st -> finish st (parse_or st) "expression")

let parse_template src =
  with_stream src (fun st -> finish st (parse_template_body st) "template")
