(** Tokenizer for the textual rule language.

    Lexical conventions follow the paper: identifiers starting with an
    upper-case letter are data items (or standard event names in template
    head position); lower-case identifiers are rule parameters.  [#]
    starts a comment running to end of line.  [|…|] is absolute value;
    note that [||] always lexes as the boolean "or" — write [| x |] with
    spaces when an absolute value directly follows another. *)

type token =
  | IDENT of string
  | NUMBER of Value.t  (** Int or Float *)
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | QUESTION
  | ARROW  (** [->] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PIPE
  | OROR
  | ANDAND
  | BANG
  | EQ  (** [=] or [==] *)
  | NE  (** [!=] or [<>] *)
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Lex_error of { pos : int; line : int; message : string }
(** [pos] is a character offset into the input; [line] is 1-based. *)

val tokenize : string -> token array
(** The result always ends with [EOF]. @raise Lex_error on bad input. *)

val tokenize_located : string -> (token * int) array
(** Like {!tokenize}, pairing each token with the 1-based source line it
    starts on (the final [EOF] carries the last line).  Used to surface
    [file:line] locations in rule-file diagnostics. *)

val token_to_string : token -> string
