(** Trace persistence: a line-oriented text format for executions.

    Traces can be dumped during a run and re-checked offline (guarantee
    checker, Appendix-A validity checker) — `cmtool check-trace` does
    exactly that.  One event per line:

    {v
    <id> <time> <site> <kind> <descriptor>
    v}

    where [kind] is [spont] or [gen:<rule-id>:<trigger-id>], and the
    descriptor uses the rule language's concrete syntax, e.g.
    [W(Salary2("e1"), 1500)].  Lines starting with [#] are comments. *)

val write_channel : out_channel -> Trace.t -> unit
val write_file : string -> Trace.t -> unit

val read_string : string -> (Trace.t, string) result
(** Errors carry the 1-based line number. *)

val read_file : string -> (Trace.t, string) result

val parse_desc : string -> (Event.desc, string) result
(** Parse a bare event descriptor (the [W(Salary2("e1"), 1500)] part of
    a line) back into an {!Event.desc} — the inverse of
    [Event.desc_to_string] for ground descriptors.  Used by recovery to
    turn journaled event records back into feedable events. *)

val event_to_line : Event.t -> string
val event_of_line : string -> (Event.t, string) result
(** Parses one line; the id inside the line must match the caller's
    expectation (checked by [read_*], not here). *)
