(** Execution traces.

    Every event occurrence in a run — database writes, notifications,
    CM requests, periodic ticks — is recorded here, forming the
    execution [(E1, …, En)] of Appendix A.2.  The {!Validity} checker
    and the guarantee checker both consume traces; the CM-Shells and
    CM-Translators produce them. *)

type t

val create : ?first_id:int -> ?stride:int -> unit -> t
(** [first_id] (default 0) and [stride] (default 1) set the id sequence
    {!record} assigns: [first_id, first_id + stride, …].  The sharded
    executor gives shard [k] of [K] the sequence [k, k + K, …] so event
    ids — which travel across shards inside firing envelopes as
    provenance — stay globally unique without cross-shard coordination.
    The default is the classic dense sequence. *)

val record :
  t ->
  time:float ->
  site:Item.site ->
  ?kind:Event.kind ->
  Event.desc ->
  Event.t
(** Append an occurrence (default [kind] is [Spontaneous]) and return it
    with its fresh id.  @raise Invalid_argument if [time] precedes the
    last recorded event — executions are recorded in time order. *)

val on_record : t -> (Event.t -> unit) -> unit
(** Subscribe to every subsequent {!record}, in registration order.
    Subscribers observe the event after it is appended; they must not
    record into the trace themselves.  With no subscribers the record
    path is unchanged — streaming consumers (e.g. the guarantee
    monitors) are pay-as-you-go. *)

val events : t -> Event.t list
(** In occurrence order. *)

val length : t -> int

val find : t -> int -> Event.t option
(** Lookup by event id. *)

val named : t -> string -> Event.t list
(** Events with the given descriptor name, in order. *)

val on_item : t -> Item.t -> Event.t list
(** Events whose first item argument is the given item. *)

val last_time : t -> float
(** Time of the last event; 0 on an empty trace. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
