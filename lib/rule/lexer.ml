type token =
  | IDENT of string
  | NUMBER of Value.t
  | STRING of string
  | LPAREN
  | RPAREN
  | LBRACKET
  | RBRACKET
  | COMMA
  | COLON
  | QUESTION
  | ARROW
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PIPE
  | OROR
  | ANDAND
  | BANG
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Lex_error of { pos : int; line : int; message : string }

let error pos line fmt =
  Printf.ksprintf (fun message -> raise (Lex_error { pos; line; message })) fmt

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize_located src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let emit t = tokens := (t, !line) :: !tokens in
  let i = ref 0 in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then begin
      if c = '\n' then incr line;
      incr i
    end
    else if c = '#' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char src.[!i] do incr i done;
      emit (IDENT (String.sub src start (!i - start)))
    end
    else if is_digit c then begin
      let start = !i in
      while !i < n && is_digit src.[!i] do incr i done;
      let is_float = ref false in
      if !i < n && src.[!i] = '.' && !i + 1 < n && is_digit src.[!i + 1] then begin
        is_float := true;
        incr i;
        while !i < n && is_digit src.[!i] do incr i done
      end;
      if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
        is_float := true;
        incr i;
        if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
        if !i >= n || not (is_digit src.[!i]) then error !i !line "malformed exponent";
        while !i < n && is_digit src.[!i] do incr i done
      end;
      let text = String.sub src start (!i - start) in
      let value =
        if !is_float then Value.Float (float_of_string text)
        else Value.Int (int_of_string text)
      in
      emit (NUMBER value)
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      let start_line = !line in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        match src.[!i] with
        | '"' ->
          closed := true;
          incr i
        | '\\' when !i + 1 < n ->
          (match src.[!i + 1] with
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | other -> Buffer.add_char buf other);
          i := !i + 2
        | other ->
          if other = '\n' then incr line;
          Buffer.add_char buf other;
          incr i
      done;
      if not !closed then error !i start_line "unterminated string literal";
      tokens := (STRING (Buffer.contents buf), start_line) :: !tokens
    end
    else begin
      let two = match peek 1 with Some c2 -> Some (c, c2) | None -> None in
      match two with
      | Some ('-', '>') ->
        emit ARROW;
        i := !i + 2
      | Some ('|', '|') ->
        emit OROR;
        i := !i + 2
      | Some ('&', '&') ->
        emit ANDAND;
        i := !i + 2
      | Some ('=', '=') ->
        emit EQ;
        i := !i + 2
      | Some ('!', '=') | Some ('<', '>') ->
        emit NE;
        i := !i + 2
      | Some ('<', '=') ->
        emit LE;
        i := !i + 2
      | Some ('>', '=') ->
        emit GE;
        i := !i + 2
      | _ ->
        (match c with
         | '(' -> emit LPAREN
         | ')' -> emit RPAREN
         | '[' -> emit LBRACKET
         | ']' -> emit RBRACKET
         | ',' -> emit COMMA
         | ':' -> emit COLON
         | '?' -> emit QUESTION
         | '+' -> emit PLUS
         | '-' -> emit MINUS
         | '*' -> emit STAR
         | '/' -> emit SLASH
         | '|' -> emit PIPE
         | '!' -> emit BANG
         | '=' -> emit EQ
         | '<' -> emit LT
         | '>' -> emit GT
         | other -> error !i !line "unexpected character %c" other);
        incr i
    end
  done;
  emit EOF;
  Array.of_list (List.rev !tokens)

let tokenize src = Array.map fst (tokenize_located src)

let token_to_string = function
  | IDENT s -> s
  | NUMBER v -> Value.to_string v
  | STRING s -> Printf.sprintf "%S" s
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | COLON -> ":"
  | QUESTION -> "?"
  | ARROW -> "->"
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PIPE -> "|"
  | OROR -> "||"
  | ANDAND -> "&&"
  | BANG -> "!"
  | EQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"
