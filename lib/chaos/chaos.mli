(** Randomized crash/loss/partition schedules with invariant checking.

    The recovery subsystem's claim (§5: "crashes can be mapped to metric
    failures if the database can remember messages that need to be sent
    out upon recovery") is easy to satisfy on a hand-picked scenario and
    easy to break on an adversarial one.  This harness generates the
    adversarial ones mechanically:

    + from a seed, a {e schedule} of workload operations and fault
      injections (site crashes with later restarts, loss/duplication
      windows, partition windows) is derived — the schedule is a pure
      function of the {!spec}, so a seed names a schedule forever;
    + the same operations run twice: once on a clean network (the
      {e oracle}) and once under the schedule's faults;
    + after the faulty run quiesces, invariants are checked: nothing the
      oracle did was lost or done twice, the transport drained, and —
      under a durable configuration — every crash surfaced as a {e
      metric} failure notice, never a logical one.

    Both runs and the report are deterministic: running the same spec
    twice yields byte-identical {!report_to_string} output, which CI
    diffs literally.

    Fault windows respect the protocol's tolerances by construction:
    crash windows never overlap (one site down at a time) and loss /
    partition windows are kept shorter than the retransmission chain, so
    with [Journal_with_checkpoint] every invariant must hold.  Crash
    {e durations} may exceed the give-up horizon — that is the point:
    without a journal those crashes lose messages, with one they are
    re-queued on restart. *)

type workload = Payroll | Bank

val workload_to_string : workload -> string
val workload_of_string : string -> workload option

type spec = {
  seed : int;
  events : int;  (** workload operations to inject *)
  crashes : int;  (** crash/restart cycles across the run *)
  crash_min_len : float;  (** shortest crash window, seconds *)
  crash_max_len : float;
      (** longest crash window — above the reliable layer's ~75 s
          retransmission chain this separates journaled from
          journal-free configurations *)
  durability : Cm_core.Journal.durability;
  chaos_workload : workload;
  churn : int;
      (** live rule-program replacements ({!Cm_core.Evolution} cutovers)
          interleaved with the faults.  Payroll only; each cutover swaps
          the whole propagation strategy for a different variant
          (propagate / propagate-cached / poll).  Churn happens in the
          oracle run too — it is workload, not fault — so the
          lost/duplicate-firing comparison still bites.  Adds two
          invariants: every churned-out epoch drains and retires with
          zero stale rejections, and every guarantee the {!Derive}
          prover claims for {e all} epochs of the run holds on the
          faulty run's observed timeline. *)
}

val default_spec : spec
(** Seed 42, 200 events, 5 crashes of 10–60 s, payroll workload,
    [Journal_with_checkpoint], no churn. *)

(** One fault injection, in absolute simulation time. *)
type fault =
  | Crash of { site : string; at : float; restart_at : float }
  | Loss_window of { at : float; until : float; drop : float; dup : float }
  | Partition of { at : float; until : float }

(** One scheduled rule-program replacement (derived like faults, applied
    to oracle and faulty run alike). *)
type churn_event = { ch_at : float; ch_variant : string }

type invariant = { inv_name : string; ok : bool; detail : string }

type report = {
  spec : spec;
  faults : fault list;
  churns : churn_event list;
  horizon : float;  (** time the faulty run quiesced at *)
  oracle_fires : int;  (** rule firings executed in the clean run *)
  chaos_fires : int;
  lost_firings : int;  (** oracle firings the faulty run never executed *)
  duplicate_firings : int;  (** faulty-run executions beyond the oracle's *)
  logical_notices : int;
  metric_notices : int;
  transport_pending : int;  (** unacknowledged envelopes after quiescence *)
  retransmits : int;
  epoch_rejections : int;
  requeued : int;
  give_ups : int;  (** retransmission chains exhausted (peer suspected) *)
  suspects : int;
  recoveries : int;
  endpoint_down_at_send : int;
  endpoint_down_in_flight : int;
  journal_appends : int;
  journal_checkpoints : int;
  replayed_records : int;
  safety_violations : int;
      (** bank only: sampled instants where X ≤ Y did not hold.  Asserted
          as an invariant only on crash-free schedules: limit grants are
          absolute values, so one decided before a crash and delivered
          (exactly once) after it can be stale and cross the limits
          until the next redistribution — a demarcation-encoding
          limitation the recovery layer reports but cannot repair. *)
  cutovers : int;  (** epoch cutovers performed in the faulty run *)
  epoch_retirements : int;
  stale_epoch_rejections : int;
      (** firings rejected at a shell for arriving after their epoch
          retired — scheduled retirement waits out the drain, so this is
          0 on a passing run *)
  both_epoch_guarantees : string list;
      (** guarantee names the prover claims under {e every} epoch of the
          run — the set held against the observed timeline *)
  both_epoch_violations : string list;
  final_state_matches : bool;
      (** payroll only: target salaries equal the oracle's *)
  invariants : invariant list;
}

val schedule : spec -> fault list
(** The fault schedule alone — derived, not run.  [report.faults] of a
    {!run} with the same spec is this exact list. *)

val churn_schedule : spec -> churn_event list
(** The churn schedule alone — pure in the spec, like {!schedule}. *)

val static_rules :
  workload ->
  Cm_rule.Rule.t list * Cm_rule.Rule.t list * Cm_rule.Item.locator
(** (interface rules, strategy rules, locator) of a fault-free instance
    of the workload — what [cmtool] feeds {!Cm_analysis.Analysis} as a
    preflight check before running chaos. *)

val run : spec -> report
(** Execute oracle and faulty runs and check invariants.  Pure in the
    spec: no wall clock, no global state. *)

val passed : report -> bool
(** All invariants hold. *)

val report_to_string : report -> string
(** Canonical multi-line report, stable across runs of the same spec. *)

(** {1 Self-healing ([--heal])}

    A second kind of schedule, aimed at the remediation layer instead of
    the recovery layer.  No crashes or message loss — the adversary here
    is the §5 [Silent_drop] failure (a notify channel that dies without
    a failure notice, so writes keep landing in the ground truth while
    the copy silently rots) plus one deliberately bad rule rollout that
    loses every guarantee of a [required] copy pair.  The run holds the
    toolkit to the self-healing contract: streaming monitors flag the
    rot within κ + one tick, the router quarantines the copy and never
    serves a read its monitor currently calls stale, the bad cutover is
    rolled back on the spot (and journaled), and after a flush every
    quarantined copy probes back to service.  Like {!run}, the whole
    thing is a pure function of the spec — byte-identical
    {!heal_report_to_string} output for the same seed, which CI diffs
    literally. *)

(** One silent-drop window on the source translator, absolute time. *)
type drop_window = { dw_at : float; dw_until : float }

type heal_report = {
  h_spec : spec;
  h_drops : drop_window list;
  h_bad_cutover_at : float;  (** the rejected rollout's cutover instant *)
  h_flush_at : float;  (** post-window refresh of every employee *)
  h_horizon : float;
  h_kappa : float;  (** the copy's proved κ (staleness bound) *)
  h_reads : int;  (** routed reads issued by the open-loop population *)
  h_replica_reads : int;
  h_master_reads : int;
  h_poll_reads : int;
  h_stale_serves : int;
      (** reads served from a copy whose monitor reported it stale at
          serve time — 0 on a passing run, audited from outside the
          router via {!Cm_route.Route.on_decision} *)
  h_quarantines : int;  (** transitions into quarantine *)
  h_probes : int;  (** half-open re-admission probes issued *)
  h_readmissions : int;  (** probes that returned the copy to service *)
  h_stale_onsets : float list;
      (** detection times of staleness transitions, ascending — each
          must fall within some window's
          [[start, end + κ + tick + 1.0]] *)
  h_stream_violations : int;  (** point violations streamed live *)
  h_rollbacks : int;  (** {!Cm_core.Evolution} auto-rollbacks (want 1) *)
  h_rollback_journaled : bool;
      (** an {!Cm_core.Journal.record.Epoch_rollback} record landed in
          every site's journal (vacuously true without durability) *)
  h_final_epoch : int;
  h_fold_mismatches : string list;
      (** streamed verdicts that disagree with the post-hoc
          {!Cm_core.Guarantee.check} fold — empty on a passing run *)
  h_invariants : invariant list;
}

val heal_schedule : spec -> drop_window list * float
(** The silent-drop windows and bad-cutover instant alone — pure in the
    spec, like {!schedule}. *)

val run_heal : spec -> heal_report
(** Execute the self-healing schedule (payroll only — raises
    [Invalid_argument] on the bank workload) under
    {!Cm_core.System.Config.monitor}.  [crashes] and [churn] in the spec
    are ignored: the heal schedule derives its own injections from a
    dedicated PRNG stream, so heal and fault schedules of one seed never
    perturb each other. *)

val heal_passed : heal_report -> bool

val heal_report_to_string : heal_report -> string
(** Canonical multi-line report, stable across runs of the same spec. *)

(** {1 Sharded chaos ([--shards])}

    Crash/partition schedules under the multi-domain fabric
    ({!Cm_shard.Shard.Fabric}): a cross-shard notification ring where
    workload injections land only on even sites and crashes hit only odd
    sites, so one shard keeps firing while another holds a crashed site.
    The schedule is derived from keyed streams (pure in the spec, like
    {!schedule}), crashes are mirrored across every shard's wheel, and
    the crashed site replays its shard-local journal on restart.

    Determinism contract, checked by CI and the recovery suite:
    {!shard_report_to_string} output is byte-identical across repeated
    runs of one spec {e and} across shard counts — the report quotes the
    canonical (id-free, sorted) trace digest and layout-invariant
    counters, and deliberately omits the shard count itself.  [ss_shards
    = 1] runs the fabric's keyed single-shard form
    ([keyed_single = true]) so its draws match the multi-shard
    layouts'. *)

type shard_spec = {
  ss_seed : int;
  ss_sites : int;  (** ring size, at least 4 *)
  ss_shards : int;
  ss_events : int;  (** spontaneous updates, even sites only *)
  ss_crashes : int;  (** non-overlapping crash windows, odd sites only *)
  ss_durability : Cm_core.Journal.durability;
}

val default_shard_spec : shard_spec
(** Seed 42, 6 sites over 2 shards, 60 events, 2 crashes,
    [Journal_with_checkpoint]. *)

type shard_report = {
  sr_spec : shard_spec;
  sr_faults : fault list;
  sr_horizon : float;
  sr_digest : string;  (** {!Cm_shard.Shard.Fabric.trace_digest} *)
  sr_events : int;  (** merged trace events across shards *)
  sr_fires : int;
  sr_restarts : int;
  sr_recovered_crashes : int;
  sr_replayed : int;  (** journal records replayed on restart *)
  sr_live_during_crash : int;
      (** events at live sites strictly inside crash windows — the
          "other shards keep firing" witness, asserted positive *)
  sr_invariants : invariant list;
}

val shard_schedule_faults : shard_spec -> fault list
(** The fault schedule alone — derived, not run; pure in the spec. *)

val run_sharded : shard_spec -> shard_report
(** Build the ring on a fabric with [ss_shards] shards, run the derived
    schedule, and check invariants.  Pure in the spec.
    @raise Invalid_argument when [ss_sites < 4] or [ss_shards < 1]. *)

val shard_passed : shard_report -> bool

val shard_report_to_string : shard_report -> string
(** Canonical multi-line report — byte-identical across runs {e and}
    across shard counts for one spec. *)
