module Sim = Cm_sim.Sim
module Sys_ = Cm_core.System
module Shell = Cm_core.Shell
module Net = Cm_net.Net
module Reliable = Cm_core.Reliable
module Journal = Cm_core.Journal
module Recovery = Cm_core.Recovery
module Msg = Cm_core.Msg
module Guarantee = Cm_core.Guarantee
module Prng = Cm_util.Prng
module Pw = Cm_workload.Payroll
module Bw = Cm_workload.Bank

type workload = Payroll | Bank

let workload_to_string = function Payroll -> "payroll" | Bank -> "bank"

let workload_of_string s : workload option =
  match String.lowercase_ascii s with
  | "payroll" -> Some Payroll
  | "bank" -> Some Bank
  | _ -> None

type spec = {
  seed : int;
  events : int;
  crashes : int;
  crash_min_len : float;
  crash_max_len : float;
  durability : Journal.durability;
  chaos_workload : workload;
}

let default_spec =
  {
    seed = 42;
    events = 200;
    crashes = 5;
    crash_min_len = 10.0;
    crash_max_len = 60.0;
    durability = Journal.Journal_with_checkpoint;
    chaos_workload = Payroll;
  }

type fault =
  | Crash of { site : string; at : float; restart_at : float }
  | Loss_window of { at : float; until : float; drop : float; dup : float }
  | Partition of { at : float; until : float }

type invariant = { inv_name : string; ok : bool; detail : string }

type report = {
  spec : spec;
  faults : fault list;
  horizon : float;
  oracle_fires : int;
  chaos_fires : int;
  lost_firings : int;
  duplicate_firings : int;
  logical_notices : int;
  metric_notices : int;
  transport_pending : int;
  retransmits : int;
  epoch_rejections : int;
  requeued : int;
  give_ups : int;
  suspects : int;
  recoveries : int;
  endpoint_down_at_send : int;
  endpoint_down_in_flight : int;
  journal_appends : int;
  journal_checkpoints : int;
  replayed_records : int;
  safety_violations : int;
  final_state_matches : bool;
  invariants : invariant list;
}

(* ------------------------------------------------------------------ *)
(* Schedule derivation — a pure function of the spec                   *)
(* ------------------------------------------------------------------ *)

(* One workload operation; values are drawn up front so the oracle and
   the faulty run inject the exact same stream. *)
type op = { op_at : float; op_slot : int; op_value : int }

let sites = function
  | Payroll -> [| Pw.site_a; Pw.site_b |]
  | Bank -> [| "branch_a"; "branch_b" |]

let employees = [| "e1"; "e2"; "e3"; "e4"; "e5" |]

(* Master stream is split once per concern, in a fixed order, so the op
   stream never shifts when the fault generator draws more or less. *)
let streams spec =
  let master = Prng.create ~seed:spec.seed in
  let ops = Prng.split master in
  let faults = Prng.split master in
  (ops, faults)

let derive_ops spec rng =
  let t = ref 5.0 in
  let ops =
    List.init spec.events (fun _ ->
        t := !t +. Prng.uniform_in rng ~lo:0.5 ~hi:2.5;
        let op_slot, op_value =
          match spec.chaos_workload with
          | Payroll -> (Prng.int rng (Array.length employees), 1000 + Prng.int rng 9000)
          | Bank ->
            (* side 0 = X (constrained above), side 1 = Y (below). *)
            let side = Prng.int rng 2 in
            let v =
              if side = 0 then Prng.int rng 100 else 20 + Prng.int rng 180
            in
            (side, v)
        in
        { op_at = !t; op_slot; op_value })
  in
  (ops, !t)

let derive_faults spec rng ~inject_end ~sites =
  let crashes =
    if spec.crashes = 0 then []
    else begin
      (* One crash per equal slot of the injection span: windows cannot
         overlap, so exactly one site is down at any time. *)
      let slot = inject_end /. float_of_int spec.crashes in
      List.init spec.crashes (fun i ->
          let s = float_of_int i *. slot in
          let dur =
            Float.min
              (Prng.uniform_in rng ~lo:spec.crash_min_len ~hi:spec.crash_max_len)
              (0.8 *. slot)
          in
          let at = s +. Prng.uniform_in rng ~lo:0.0 ~hi:(slot -. dur) in
          let site = Prng.pick rng sites in
          Crash { site; at; restart_at = at +. dur })
    end
  in
  let n_loss = 1 + (spec.events / 500) in
  let loss =
    let slot = inject_end /. float_of_int n_loss in
    List.init n_loss (fun i ->
        let s = float_of_int i *. slot in
        let dur = Prng.uniform_in rng ~lo:10.0 ~hi:(Float.min 50.0 (0.8 *. slot)) in
        let at = s +. Prng.uniform_in rng ~lo:0.0 ~hi:(slot -. dur) in
        let drop = 0.05 +. Prng.float rng 0.1 in
        let dup = Prng.float rng 0.05 in
        Loss_window { at; until = at +. dur; drop; dup })
  in
  let n_part = 1 + (spec.events / 1000) in
  let partitions =
    let slot = inject_end /. float_of_int n_part in
    List.init n_part (fun i ->
        let s = float_of_int i *. slot in
        let dur = Prng.uniform_in rng ~lo:5.0 ~hi:(Float.min 30.0 (0.5 *. slot)) in
        let at = s +. Prng.uniform_in rng ~lo:0.0 ~hi:(slot -. dur) in
        Partition { at; until = at +. dur })
  in
  let start = function
    | Crash { at; _ } | Loss_window { at; _ } | Partition { at; _ } -> at
  in
  List.stable_sort (fun a b -> Float.compare (start a) (start b))
    (crashes @ loss @ partitions)

let schedule spec =
  let ops_rng, fault_rng = streams spec in
  let _, inject_end = derive_ops spec ops_rng in
  derive_faults spec fault_rng ~inject_end ~sites:(sites spec.chaos_workload)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let chaos_config (spec : spec) =
  Sys_.Config.(
    seeded spec.seed
    |> with_reliable Reliable.default_config
    |> with_durability spec.durability)

let fault_end = function
  | Crash { restart_at; _ } -> restart_at
  | Loss_window { until; _ } | Partition { until; _ } -> until

(* Quiescence margin after the last injection: long enough for the full
   retransmission chain (~75 s) plus recovery re-queues to drain. *)
let drain = 300.0

let horizon_of ~inject_end faults =
  List.fold_left (fun acc f -> Float.max acc (fault_end f)) inject_end faults
  +. drain

(* The partition target depends on the workload's site names, so each
   runner passes its own pair. *)
let apply_faults system ~site_pair faults =
  let sim = Sys_.sim system and net = Sys_.net system in
  let sa, sb = site_pair in
  List.iter
    (fun f ->
      match f with
      | Crash { site; at; restart_at } ->
        Sim.schedule_at sim at (fun () -> Sys_.crash_site system ~site);
        Sim.schedule_at sim restart_at (fun () -> Sys_.restart_site system ~site)
      | Loss_window { at; until; drop; dup } ->
        Sim.schedule_at sim at (fun () ->
            Net.set_default_faults net { Net.drop_prob = drop; dup_prob = dup });
        Sim.schedule_at sim until (fun () -> Net.set_default_faults net Net.no_faults)
      | Partition { at; until } ->
        Sim.schedule_at sim at (fun () ->
            Net.partition_pair net ~site_a:sa ~site_b:sb ~until))
    faults

type notice_tally = { mutable logical : int; mutable metric : int }

let count_notices shells =
  let tally = { logical = 0; metric = 0 } in
  List.iter
    (fun shell ->
      Shell.on_failure_notice shell (fun ~origin:_ kind ->
          match kind with
          | Msg.Logical -> tally.logical <- tally.logical + 1
          | Msg.Metric -> tally.metric <- tally.metric + 1))
    shells;
  tally

type run_result = {
  r_fires : int;
  r_logical : int;
  r_metric : int;
  r_pending : int;
  r_retransmits : int;
  r_epoch_rejections : int;
  r_requeued : int;
  r_give_ups : int;
  r_suspects : int;
  r_recoveries : int;
  r_ep_down_send : int;
  r_ep_down_flight : int;
  r_journal_appends : int;
  r_journal_checkpoints : int;
  r_replayed : int;
  r_safety_violations : int;
  r_final : (string * float) list;  (* canonical final state *)
  r_follows_valid : bool;
}

let transport_stats system =
  match Sys_.reliable system with
  | None -> (0, 0, 0, 0, 0, 0, 0)
  | Some r ->
    let s = Reliable.stats r in
    ( Reliable.pending r,
      s.Reliable.retransmits,
      s.Reliable.epoch_rejections,
      s.Reliable.requeued,
      s.Reliable.give_ups,
      s.Reliable.suspects,
      s.Reliable.recoveries )

let journal_stats system site_list =
  match Sys_.journals system with
  | None -> (0, 0)
  | Some reg ->
    List.fold_left
      (fun (appends, cps) site ->
        let j = Journal.for_site reg ~site in
        let s = Journal.stats j in
        (appends + s.Journal.appends, cps + s.Journal.checkpoints))
      (0, 0) site_list

let recovery_replayed system =
  match Sys_.recovery system with
  | None -> 0
  | Some r -> (Recovery.stats r).Recovery.replayed_records

let run_payroll spec ~faulty =
  let p = Pw.create ~config:(chaos_config spec) ~employees:(Array.length employees) () in
  Pw.install_propagation p;
  let tally = count_notices [ p.Pw.shell_a; p.Pw.shell_b ] in
  let g_follows =
    Sys_.declare_guarantee p.Pw.system ~sites:[ Pw.site_a; Pw.site_b ]
      (Guarantee.Follows
         { Guarantee.leader = Pw.source_item "e1"; follower = Pw.target_item "e1" })
  in
  let ops_rng, fault_rng = streams spec in
  let ops, inject_end = derive_ops spec ops_rng in
  let faults =
    derive_faults spec fault_rng ~inject_end ~sites:(sites Payroll)
  in
  List.iter
    (fun op ->
      Pw.schedule_update p ~at:op.op_at ~emp:employees.(op.op_slot)
        ~salary:op.op_value)
    ops;
  if faulty then
    apply_faults p.Pw.system ~site_pair:(Pw.site_a, Pw.site_b) faults;
  let horizon = horizon_of ~inject_end faults in
  Sys_.run p.Pw.system ~until:horizon;
  let pending, retransmits, epoch_rejections, requeued, give_ups, suspects, recoveries =
    transport_stats p.Pw.system
  in
  let appends, checkpoints = journal_stats p.Pw.system [ Pw.site_a; Pw.site_b ] in
  let final =
    List.map
      (fun emp -> (emp, Cm_rule.Value.to_float (Pw.salary_at p `B emp)))
      (Array.to_list employees)
  in
  ( {
      r_fires = Shell.fires_executed p.Pw.shell_a + Shell.fires_executed p.Pw.shell_b;
      r_logical = tally.logical;
      r_metric = tally.metric;
      r_pending = pending;
      r_retransmits = retransmits;
      r_epoch_rejections = epoch_rejections;
      r_requeued = requeued;
      r_give_ups = give_ups;
      r_suspects = suspects;
      r_recoveries = recoveries;
      r_ep_down_send = Net.endpoint_down_at_send (Sys_.net p.Pw.system);
      r_ep_down_flight = Net.endpoint_down_in_flight (Sys_.net p.Pw.system);
      r_journal_appends = appends;
      r_journal_checkpoints = checkpoints;
      r_replayed = recovery_replayed p.Pw.system;
      r_safety_violations = 0;
      r_final = final;
      r_follows_valid = Sys_.guarantee_valid g_follows;
    },
    faults,
    horizon )

let run_bank spec ~faulty =
  let b =
    Bw.create ~config:(chaos_config spec) ~policy:Cm_core.Demarcation.Conservative ()
  in
  let tally = count_notices [ b.Bw.shell_a; b.Bw.shell_b ] in
  let ops_rng, fault_rng = streams spec in
  let ops, inject_end = derive_ops spec ops_rng in
  let faults = derive_faults spec fault_rng ~inject_end ~sites:(sites Bank) in
  let sim = Sys_.sim b.Bw.system in
  List.iter
    (fun op ->
      Sim.schedule_at sim op.op_at (fun () ->
          if op.op_slot = 0 then ignore (Bw.try_set_x b op.op_value)
          else ignore (Bw.try_set_y b op.op_value)))
    ops;
  (* The X <= Y safety claim is sampled rather than event-checked: the
     demarcation protocol must keep it true at every instant, crashes or
     not, because limits only ever move in the safe direction first. *)
  let violations = ref 0 in
  Sim.every sim ~period:1.0
    (fun () -> if Bw.x_bal b > Bw.y_bal b then incr violations)
    ~cancel:(fun () -> false);
  if faulty then
    apply_faults b.Bw.system ~site_pair:("branch_a", "branch_b") faults;
  let horizon = horizon_of ~inject_end faults in
  Sys_.run b.Bw.system ~until:horizon;
  let pending, retransmits, epoch_rejections, requeued, give_ups, suspects, recoveries =
    transport_stats b.Bw.system
  in
  let appends, checkpoints =
    journal_stats b.Bw.system [ "branch_a"; "branch_b" ]
  in
  ( {
      r_fires = Shell.fires_executed b.Bw.shell_a + Shell.fires_executed b.Bw.shell_b;
      r_logical = tally.logical;
      r_metric = tally.metric;
      r_pending = pending;
      r_retransmits = retransmits;
      r_epoch_rejections = epoch_rejections;
      r_requeued = requeued;
      r_give_ups = give_ups;
      r_suspects = suspects;
      r_recoveries = recoveries;
      r_ep_down_send = Net.endpoint_down_at_send (Sys_.net b.Bw.system);
      r_ep_down_flight = Net.endpoint_down_in_flight (Sys_.net b.Bw.system);
      r_journal_appends = appends;
      r_journal_checkpoints = checkpoints;
      r_replayed = recovery_replayed b.Bw.system;
      r_safety_violations = !violations;
      r_final =
        [ ("x_bal", Bw.x_bal b); ("y_bal", Bw.y_bal b);
          ("x_lim", Bw.x_lim b); ("y_lim", Bw.y_lim b) ];
      r_follows_valid = true;
    },
    faults,
    horizon )

(* ------------------------------------------------------------------ *)
(* Invariants and report                                               *)
(* ------------------------------------------------------------------ *)

let check_invariants spec ~oracle ~chaos =
  let durable = spec.durability <> Journal.None in
  let lost = max 0 (oracle.r_fires - chaos.r_fires) in
  let dup = max 0 (chaos.r_fires - oracle.r_fires) in
  let inv name ok detail = { inv_name = name; ok; detail } in
  let common =
    [
      inv "transport-drained" (chaos.r_pending = 0)
        (Printf.sprintf "%d unacknowledged envelopes after quiescence"
           chaos.r_pending);
      inv "crashes-are-metric-only" (chaos.r_logical = 0)
        (Printf.sprintf "%d logical notices (want 0: a remembered crash is late, not lost)"
           chaos.r_logical);
      inv "metric-notice-on-crash"
        (spec.crashes = 0 || chaos.r_metric > 0)
        (Printf.sprintf "%d metric notices for %d crashes" chaos.r_metric
           spec.crashes);
    ]
  in
  let specific =
    match spec.chaos_workload with
    | Payroll ->
      [
        inv "no-lost-firings" (lost = 0)
          (Printf.sprintf "oracle executed %d firings, chaos %d" oracle.r_fires
             chaos.r_fires);
        inv "no-duplicate-firings" (dup = 0)
          (Printf.sprintf "chaos executed %d firings beyond the oracle's" dup);
        inv "final-state-matches-oracle"
          (chaos.r_final = oracle.r_final)
          "target salaries after quiescence vs the fault-free run";
        inv "follows-guarantee-survives"
          ((not durable) || chaos.r_follows_valid)
          "metric failures must not invalidate the plain Follows guarantee";
      ]
    | Bank ->
      (* With crashes the sampled X <= Y count is reported, not asserted:
         limit grants travel as absolute values, so a grant decided
         before a crash and delivered (exactly once) after it can be
         stale and cross the limits until the next redistribution — a
         pre-existing property of the demarcation encoding, not of the
         recovery layer.  On crash-free schedules delivery delay is
         bounded by the retransmission chain and the window never
         opens. *)
      if spec.crashes = 0 then
        [
          inv "x-leq-y-always" (chaos.r_safety_violations = 0)
            (Printf.sprintf "%d sampled instants violated X <= Y"
               chaos.r_safety_violations);
        ]
      else []
  in
  (specific @ common, lost, dup)

let static_rules w =
  (* A throwaway fault-free instance: workload constructors install the
     same rules every run, so its specifications are the workload's. *)
  let config = Sys_.Config.seeded 0 in
  let system =
    match w with
    | Payroll ->
      let p = Pw.create ~config ~employees:1 () in
      Pw.install_propagation p;
      p.Pw.system
    | Bank ->
      let b = Bw.create ~config ~policy:Cm_core.Demarcation.Conservative () in
      b.Bw.system
  in
  (Sys_.interface_rules system, Sys_.strategy_rules system, Sys_.locator system)

let run spec =
  let (oracle, _, _), (chaos, faults, horizon) =
    match spec.chaos_workload with
    | Payroll -> (run_payroll spec ~faulty:false, run_payroll spec ~faulty:true)
    | Bank -> (run_bank spec ~faulty:false, run_bank spec ~faulty:true)
  in
  let invariants, lost, dup = check_invariants spec ~oracle ~chaos in
  {
    spec;
    faults;
    horizon;
    oracle_fires = oracle.r_fires;
    chaos_fires = chaos.r_fires;
    lost_firings = lost;
    duplicate_firings = dup;
    logical_notices = chaos.r_logical;
    metric_notices = chaos.r_metric;
    transport_pending = chaos.r_pending;
    retransmits = chaos.r_retransmits;
    epoch_rejections = chaos.r_epoch_rejections;
    requeued = chaos.r_requeued;
    give_ups = chaos.r_give_ups;
    suspects = chaos.r_suspects;
    recoveries = chaos.r_recoveries;
    endpoint_down_at_send = chaos.r_ep_down_send;
    endpoint_down_in_flight = chaos.r_ep_down_flight;
    journal_appends = chaos.r_journal_appends;
    journal_checkpoints = chaos.r_journal_checkpoints;
    replayed_records = chaos.r_replayed;
    safety_violations = chaos.r_safety_violations;
    final_state_matches =
      (match spec.chaos_workload with
       | Payroll -> chaos.r_final = oracle.r_final
       | Bank -> true);
    invariants;
  }

let passed report = List.for_all (fun i -> i.ok) report.invariants

let fault_to_string = function
  | Crash { site; at; restart_at } ->
    Printf.sprintf "crash %s @ %.2f -> restart @ %.2f" site at restart_at
  | Loss_window { at; until; drop; dup } ->
    Printf.sprintf "loss drop=%.3f dup=%.3f @ %.2f -> %.2f" drop dup at until
  | Partition { at; until } ->
    Printf.sprintf "partition @ %.2f -> %.2f" at until

let report_to_string r =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "chaos report";
  line "workload=%s seed=%d events=%d crashes=%d crash_len=[%.1f,%.1f] durability=%s"
    (workload_to_string r.spec.chaos_workload)
    r.spec.seed r.spec.events r.spec.crashes r.spec.crash_min_len
    r.spec.crash_max_len
    (Journal.durability_to_string r.spec.durability);
  line "schedule:";
  List.iter (fun f -> line "  %s" (fault_to_string f)) r.faults;
  line "results (quiesced @ %.2f):" r.horizon;
  line "  firings oracle=%d chaos=%d lost=%d duplicated=%d" r.oracle_fires
    r.chaos_fires r.lost_firings r.duplicate_firings;
  line "  notices logical=%d metric=%d" r.logical_notices r.metric_notices;
  line "  transport pending=%d retransmits=%d epoch_rejections=%d requeued=%d"
    r.transport_pending r.retransmits r.epoch_rejections r.requeued;
  line "  transport give_ups=%d suspects=%d recoveries=%d" r.give_ups r.suspects
    r.recoveries;
  line "  endpoint_down at_send=%d in_flight=%d" r.endpoint_down_at_send
    r.endpoint_down_in_flight;
  line "  journal appends=%d checkpoints=%d replayed=%d" r.journal_appends
    r.journal_checkpoints r.replayed_records;
  (match r.spec.chaos_workload with
   | Payroll -> line "  final state matches oracle: %b" r.final_state_matches
   | Bank -> line "  safety violations: %d" r.safety_violations);
  line "invariants:";
  List.iter
    (fun i ->
      line "  %s %s — %s" (if i.ok then "ok  " else "FAIL") i.inv_name i.detail)
    r.invariants;
  line "verdict: %s" (if passed r then "PASS" else "FAIL");
  Buffer.contents b
