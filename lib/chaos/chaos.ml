module Sim = Cm_sim.Sim
module Sys_ = Cm_core.System
module Shell = Cm_core.Shell
module Net = Cm_net.Net
module Reliable = Cm_core.Reliable
module Journal = Cm_core.Journal
module Recovery = Cm_core.Recovery
module Msg = Cm_core.Msg
module Guarantee = Cm_core.Guarantee
module Evolution = Cm_core.Evolution
module Strategy = Cm_core.Strategy
module Prng = Cm_util.Prng
module Monitor = Cm_core.Monitor
module Tr_rel = Cm_core.Tr_relational
module Health = Cm_sources.Health
module Route = Cm_route.Route
module Pw = Cm_workload.Payroll
module Bw = Cm_workload.Bank
module Readers = Cm_workload.Readers

type workload = Payroll | Bank

let workload_to_string = function Payroll -> "payroll" | Bank -> "bank"

let workload_of_string s : workload option =
  match String.lowercase_ascii s with
  | "payroll" -> Some Payroll
  | "bank" -> Some Bank
  | _ -> None

type spec = {
  seed : int;
  events : int;
  crashes : int;
  crash_min_len : float;
  crash_max_len : float;
  durability : Journal.durability;
  chaos_workload : workload;
  churn : int;
}

let default_spec =
  {
    seed = 42;
    events = 200;
    crashes = 5;
    crash_min_len = 10.0;
    crash_max_len = 60.0;
    durability = Journal.Journal_with_checkpoint;
    chaos_workload = Payroll;
    churn = 0;
  }

type fault =
  | Crash of { site : string; at : float; restart_at : float }
  | Loss_window of { at : float; until : float; drop : float; dup : float }
  | Partition of { at : float; until : float }

(* One live rule-program replacement (Evolution cutover), in absolute
   simulation time.  Injected into the oracle and the faulty run alike:
   churn is part of the workload being compared, not a fault. *)
type churn_event = { ch_at : float; ch_variant : string }

type invariant = { inv_name : string; ok : bool; detail : string }

type report = {
  spec : spec;
  faults : fault list;
  churns : churn_event list;
  horizon : float;
  oracle_fires : int;
  chaos_fires : int;
  lost_firings : int;
  duplicate_firings : int;
  logical_notices : int;
  metric_notices : int;
  transport_pending : int;
  retransmits : int;
  epoch_rejections : int;
  requeued : int;
  give_ups : int;
  suspects : int;
  recoveries : int;
  endpoint_down_at_send : int;
  endpoint_down_in_flight : int;
  journal_appends : int;
  journal_checkpoints : int;
  replayed_records : int;
  safety_violations : int;
  cutovers : int;
  epoch_retirements : int;
  stale_epoch_rejections : int;
  both_epoch_guarantees : string list;
  both_epoch_violations : string list;
  final_state_matches : bool;
  invariants : invariant list;
}

(* ------------------------------------------------------------------ *)
(* Schedule derivation — a pure function of the spec                   *)
(* ------------------------------------------------------------------ *)

(* One workload operation; values are drawn up front so the oracle and
   the faulty run inject the exact same stream. *)
type op = { op_at : float; op_slot : int; op_value : int }

let sites = function
  | Payroll -> [| Pw.site_a; Pw.site_b |]
  | Bank -> [| "branch_a"; "branch_b" |]

let employees = [| "e1"; "e2"; "e3"; "e4"; "e5" |]

(* Master stream is split once per concern, in a fixed order, so the op
   stream never shifts when the fault generator draws more or less.  The
   churn stream splits after faults for the same reason: a spec with
   churn = 0 derives the exact ops and faults it did before churn
   existed.  The heal stream (silent-drop windows, bad cutover, reader
   traffic) splits last, so pre-heal specs keep their exact schedules
   and reports. *)
let streams spec =
  let master = Prng.create ~seed:spec.seed in
  let ops = Prng.split master in
  let faults = Prng.split master in
  let churn = Prng.split master in
  let heal = Prng.split master in
  (ops, faults, churn, heal)

let derive_ops spec rng =
  let t = ref 5.0 in
  let ops =
    List.init spec.events (fun _ ->
        t := !t +. Prng.uniform_in rng ~lo:0.5 ~hi:2.5;
        let op_slot, op_value =
          match spec.chaos_workload with
          | Payroll -> (Prng.int rng (Array.length employees), 1000 + Prng.int rng 9000)
          | Bank ->
            (* side 0 = X (constrained above), side 1 = Y (below). *)
            let side = Prng.int rng 2 in
            let v =
              if side = 0 then Prng.int rng 100 else 20 + Prng.int rng 180
            in
            (side, v)
        in
        { op_at = !t; op_slot; op_value })
  in
  (ops, !t)

let derive_faults spec rng ~inject_end ~sites =
  let crashes =
    if spec.crashes = 0 then []
    else begin
      (* One crash per equal slot of the injection span: windows cannot
         overlap, so exactly one site is down at any time. *)
      let slot = inject_end /. float_of_int spec.crashes in
      List.init spec.crashes (fun i ->
          let s = float_of_int i *. slot in
          let dur =
            Float.min
              (Prng.uniform_in rng ~lo:spec.crash_min_len ~hi:spec.crash_max_len)
              (0.8 *. slot)
          in
          let at = s +. Prng.uniform_in rng ~lo:0.0 ~hi:(slot -. dur) in
          let site = Prng.pick rng sites in
          Crash { site; at; restart_at = at +. dur })
    end
  in
  let n_loss = 1 + (spec.events / 500) in
  let loss =
    let slot = inject_end /. float_of_int n_loss in
    List.init n_loss (fun i ->
        let s = float_of_int i *. slot in
        let dur = Prng.uniform_in rng ~lo:10.0 ~hi:(Float.min 50.0 (0.8 *. slot)) in
        let at = s +. Prng.uniform_in rng ~lo:0.0 ~hi:(slot -. dur) in
        let drop = 0.05 +. Prng.float rng 0.1 in
        let dup = Prng.float rng 0.05 in
        Loss_window { at; until = at +. dur; drop; dup })
  in
  let n_part = 1 + (spec.events / 1000) in
  let partitions =
    let slot = inject_end /. float_of_int n_part in
    List.init n_part (fun i ->
        let s = float_of_int i *. slot in
        let dur = Prng.uniform_in rng ~lo:5.0 ~hi:(Float.min 30.0 (0.5 *. slot)) in
        let at = s +. Prng.uniform_in rng ~lo:0.0 ~hi:(slot -. dur) in
        Partition { at; until = at +. dur })
  in
  let start = function
    | Crash { at; _ } | Loss_window { at; _ } | Partition { at; _ } -> at
  in
  List.stable_sort (fun a b -> Float.compare (start a) (start b))
    (crashes @ loss @ partitions)

(* The three strategy variants churned between; the base program is
   "propagate", and each draw picks a variant different from the one
   currently active, so every churn event is a real program change. *)
let churn_variants = [| "propagate"; "propagate-cached"; "poll" |]

let derive_churn spec rng ~inject_end =
  match spec.chaos_workload with
  | Bank -> []  (* churn is defined over the payroll copy constraint *)
  | Payroll ->
    if spec.churn = 0 then []
    else begin
      (* Times first, then variants, so neither draw shifts the other. *)
      let times =
        List.init spec.churn (fun _ ->
            Prng.uniform_in rng ~lo:(0.15 *. inject_end) ~hi:(0.95 *. inject_end))
        |> List.sort Float.compare
      in
      let prev = ref "propagate" in
      List.map
        (fun at ->
          let others =
            Array.to_list churn_variants
            |> List.filter (fun v -> not (String.equal v !prev))
            |> Array.of_list
          in
          let v = others.(Prng.int rng (Array.length others)) in
          prev := v;
          { ch_at = at; ch_variant = v })
        times
    end

let schedule spec =
  let ops_rng, fault_rng, _, _ = streams spec in
  let _, inject_end = derive_ops spec ops_rng in
  derive_faults spec fault_rng ~inject_end ~sites:(sites spec.chaos_workload)

let churn_schedule spec =
  let ops_rng, _, churn_rng, _ = streams spec in
  let _, inject_end = derive_ops spec ops_rng in
  derive_churn spec churn_rng ~inject_end

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let chaos_config (spec : spec) =
  Sys_.Config.(
    seeded spec.seed
    |> with_reliable Reliable.default_config
    |> with_durability spec.durability)

let fault_end = function
  | Crash { restart_at; _ } -> restart_at
  | Loss_window { until; _ } | Partition { until; _ } -> until

(* Quiescence margin after the last injection: long enough for the full
   retransmission chain (~75 s) plus recovery re-queues to drain. *)
let drain = 300.0

let horizon_of ~inject_end faults =
  List.fold_left (fun acc f -> Float.max acc (fault_end f)) inject_end faults
  +. drain

(* The partition target depends on the workload's site names, so each
   runner passes its own pair. *)
let apply_faults system ~site_pair faults =
  let sim = Sys_.sim system and net = Sys_.net system in
  let sa, sb = site_pair in
  List.iter
    (fun f ->
      match f with
      | Crash { site; at; restart_at } ->
        Sim.schedule_at sim at (fun () -> Sys_.crash_site system ~site);
        Sim.schedule_at sim restart_at (fun () -> Sys_.restart_site system ~site)
      | Loss_window { at; until; drop; dup } ->
        Sim.schedule_at sim at (fun () ->
            Net.set_default_faults net { Net.drop_prob = drop; dup_prob = dup });
        Sim.schedule_at sim until (fun () -> Net.set_default_faults net Net.no_faults)
      | Partition { at; until } ->
        Sim.schedule_at sim at (fun () ->
            Net.partition_pair net ~site_a:sa ~site_b:sb ~until))
    faults

type notice_tally = { mutable logical : int; mutable metric : int }

let count_notices shells =
  let tally = { logical = 0; metric = 0 } in
  List.iter
    (fun shell ->
      Shell.on_failure_notice shell (fun ~origin:_ kind ->
          match kind with
          | Msg.Logical -> tally.logical <- tally.logical + 1
          | Msg.Metric -> tally.metric <- tally.metric + 1))
    shells;
  tally

type run_result = {
  r_fires : int;
  r_logical : int;
  r_metric : int;
  r_pending : int;
  r_retransmits : int;
  r_epoch_rejections : int;
  r_requeued : int;
  r_give_ups : int;
  r_suspects : int;
  r_recoveries : int;
  r_ep_down_send : int;
  r_ep_down_flight : int;
  r_journal_appends : int;
  r_journal_checkpoints : int;
  r_replayed : int;
  r_safety_violations : int;
  r_cutovers : int;
  r_epoch_retirements : int;
  r_stale_rejections : int;
  r_both_kept : string list;
  r_both_violations : string list;
  r_final : (string * float) list;  (* canonical final state *)
  r_follows_valid : bool;
}

let transport_stats system =
  match Sys_.reliable system with
  | None -> (0, 0, 0, 0, 0, 0, 0)
  | Some r ->
    let s = Reliable.stats r in
    ( Reliable.pending r,
      s.Reliable.retransmits,
      s.Reliable.epoch_rejections,
      s.Reliable.requeued,
      s.Reliable.give_ups,
      s.Reliable.suspects,
      s.Reliable.recoveries )

let journal_stats system site_list =
  match Sys_.journals system with
  | None -> (0, 0)
  | Some reg ->
    List.fold_left
      (fun (appends, cps) site ->
        let j = Journal.for_site reg ~site in
        let s = Journal.stats j in
        (appends + s.Journal.appends, cps + s.Journal.checkpoints))
      (0, 0) site_list

let recovery_replayed system =
  match Sys_.recovery system with
  | None -> 0
  | Some r -> (Recovery.stats r).Recovery.replayed_records

(* Build the i-th churned strategy.  Prefixes carry the epoch index so
   every epoch's rule ids are distinct in journals and traces; the cache
   of a cached epoch is likewise per-epoch (its aux_init re-initializes
   it at cutover anyway). *)
let churn_strategy i variant =
  let pfx = Printf.sprintf "churn%d" (i + 1) in
  match variant with
  | "propagate" ->
    Strategy.propagate ~prefix:pfx ~delta:5.0 ~source:Pw.source_pattern
      ~target:Pw.target_pattern ()
  | "propagate-cached" ->
    Strategy.propagate_cached ~prefix:pfx ~delta:5.0 ~source:Pw.source_pattern
      ~target:Pw.target_pattern
      ~cache:(Printf.sprintf "SalCache%d" (i + 1))
      ()
  | "poll" ->
    (* Read requests must name concrete items (cf. Payroll.install_polling). *)
    Strategy.combine
      (List.map
         (fun emp ->
           let concrete base =
             Cm_rule.Expr.Item (base, [ Cm_rule.Expr.Const (Cm_rule.Value.Str emp) ])
           in
           Strategy.poll
             ~prefix:(pfx ^ "_" ^ emp)
             ~period:20.0 ~delta:5.0 ~source:(concrete "Salary1")
             ~target:(concrete "Salary2") ())
         (Array.to_list employees))
  | v -> invalid_arg ("Chaos.churn_strategy: unknown variant " ^ v)

let guarantee_of_name name emp =
  let pair =
    { Guarantee.leader = Pw.source_item emp; follower = Pw.target_item emp }
  in
  match name with
  | "(1) follows" -> Some (Guarantee.Follows pair)
  | "(2) leads" -> Some (Guarantee.Leads pair)
  | "(3) strictly-follows" -> Some (Guarantee.Strictly_follows pair)
  | _ -> None  (* metric guarantees are excused under faults (§5) *)

(* Guarantees claimed Kept by BOTH epochs of EVERY transition — i.e.
   proved under every rule program that was ever active in the run.
   These must hold on the observed timeline despite churn and faults. *)
let both_epoch_kept transitions =
  match List.map Evolution.kept_names transitions with
  | [] -> []
  | first :: rest ->
    List.filter (fun n -> List.for_all (fun s -> List.mem n s) rest) first

let run_payroll spec ~faulty =
  let p = Pw.create ~config:(chaos_config spec) ~employees:(Array.length employees) () in
  Pw.install_propagation p;
  let tally = count_notices [ p.Pw.shell_a; p.Pw.shell_b ] in
  let g_follows =
    Sys_.declare_guarantee p.Pw.system ~sites:[ Pw.site_a; Pw.site_b ]
      (Guarantee.Follows
         { Guarantee.leader = Pw.source_item "e1"; follower = Pw.target_item "e1" })
  in
  let ops_rng, fault_rng, churn_rng, _ = streams spec in
  let ops, inject_end = derive_ops spec ops_rng in
  let faults =
    derive_faults spec fault_rng ~inject_end ~sites:(sites Payroll)
  in
  let churns = derive_churn spec churn_rng ~inject_end in
  List.iter
    (fun op ->
      Pw.schedule_update p ~at:op.op_at ~emp:employees.(op.op_slot)
        ~salary:op.op_value)
    ops;
  if faulty then
    apply_faults p.Pw.system ~site_pair:(Pw.site_a, Pw.site_b) faults;
  let horizon = horizon_of ~inject_end faults in
  (* The payroll bindings never declare a no-spontaneous-write interface
     on the target, but in this harness it is true by construction: the
     op stream only updates site A.  Without the declaration the prover
     (correctly, conservatively) refuses every follows-style guarantee
     and the both-epoch invariant would be vacuous. *)
  let evo =
    Evolution.create
      ~constraints:[ ("Salary1", "Salary2") ]
      ~interfaces:
        (Sys_.interface_rules p.Pw.system
        @ [ Cm_core.Interface.no_spontaneous_write Pw.target_pattern ])
      p.Pw.system
  in
  let sim = Sys_.sim p.Pw.system in
  List.iteri
    (fun i ce ->
      Sim.schedule_at sim ce.ch_at (fun () ->
          match Evolution.evolve ~quiesce:false evo (churn_strategy i ce.ch_variant) with
          | Ok _ -> ()
          | Error e -> failwith ("Chaos: churn cutover failed: " ^ e)))
    churns;
  (* Retire every drained epoch at a fixed time well past the last fault
     window plus the full retransmission-and-requeue chain, so the oracle
     and the faulty run retire at the same instant and neither still has
     old-epoch envelopes on the wire (stale rejection under adversarial
     timing is exercised by the unit tests, not here — a rejection on one
     side only would masquerade as message loss). *)
  if churns <> [] then
    Sim.schedule_at sim (horizon -. (drain /. 2.0)) (fun () ->
        List.iter
          (fun epoch ->
            match Evolution.retire evo ~epoch with
            | Ok () -> ()
            | Error e -> failwith ("Chaos: churn retire failed: " ^ e))
          (Evolution.draining evo));
  Sys_.run p.Pw.system ~until:horizon;
  let transitions = Evolution.transitions evo in
  let both_kept =
    List.filter
      (fun n -> Option.is_some (guarantee_of_name n "e1"))
      (both_epoch_kept transitions)
  in
  let both_violations =
    List.concat_map
      (fun name ->
        List.filter_map
          (fun emp ->
            match guarantee_of_name name emp with
            | None -> None
            | Some g ->
              let rep =
                Sys_.check_guarantee ~initial:p.Pw.initial
                  ~ignore_after:inject_end p.Pw.system g
              in
              if rep.Guarantee.holds then None
              else
                Some
                  (Printf.sprintf "%s[%s]: %s" name emp
                     (String.concat "; " rep.Guarantee.counterexamples)))
          (Array.to_list employees))
      both_kept
  in
  let pending, retransmits, epoch_rejections, requeued, give_ups, suspects, recoveries =
    transport_stats p.Pw.system
  in
  let appends, checkpoints = journal_stats p.Pw.system [ Pw.site_a; Pw.site_b ] in
  let final =
    List.map
      (fun emp -> (emp, Cm_rule.Value.to_float (Pw.salary_at p `B emp)))
      (Array.to_list employees)
  in
  ( {
      r_fires = Shell.fires_executed p.Pw.shell_a + Shell.fires_executed p.Pw.shell_b;
      r_logical = tally.logical;
      r_metric = tally.metric;
      r_pending = pending;
      r_retransmits = retransmits;
      r_epoch_rejections = epoch_rejections;
      r_requeued = requeued;
      r_give_ups = give_ups;
      r_suspects = suspects;
      r_recoveries = recoveries;
      r_ep_down_send = Net.endpoint_down_at_send (Sys_.net p.Pw.system);
      r_ep_down_flight = Net.endpoint_down_in_flight (Sys_.net p.Pw.system);
      r_journal_appends = appends;
      r_journal_checkpoints = checkpoints;
      r_replayed = recovery_replayed p.Pw.system;
      r_safety_violations = 0;
      r_cutovers = List.length transitions;
      r_epoch_retirements = Evolution.retirements evo;
      r_stale_rejections = Evolution.stale_rejections evo;
      r_both_kept = both_kept;
      r_both_violations = both_violations;
      r_final = final;
      r_follows_valid = Sys_.guarantee_valid g_follows;
    },
    faults,
    churns,
    horizon )

let run_bank spec ~faulty =
  let b =
    Bw.create ~config:(chaos_config spec) ~policy:Cm_core.Demarcation.Conservative ()
  in
  let tally = count_notices [ b.Bw.shell_a; b.Bw.shell_b ] in
  let ops_rng, fault_rng, _, _ = streams spec in
  let ops, inject_end = derive_ops spec ops_rng in
  let faults = derive_faults spec fault_rng ~inject_end ~sites:(sites Bank) in
  let sim = Sys_.sim b.Bw.system in
  List.iter
    (fun op ->
      Sim.schedule_at sim op.op_at (fun () ->
          if op.op_slot = 0 then ignore (Bw.try_set_x b op.op_value)
          else ignore (Bw.try_set_y b op.op_value)))
    ops;
  (* The X <= Y safety claim is sampled rather than event-checked: the
     demarcation protocol must keep it true at every instant, crashes or
     not, because limits only ever move in the safe direction first. *)
  let violations = ref 0 in
  Sim.every sim ~period:1.0
    (fun () -> if Bw.x_bal b > Bw.y_bal b then incr violations)
    ~cancel:(fun () -> false);
  if faulty then
    apply_faults b.Bw.system ~site_pair:("branch_a", "branch_b") faults;
  let horizon = horizon_of ~inject_end faults in
  Sys_.run b.Bw.system ~until:horizon;
  let pending, retransmits, epoch_rejections, requeued, give_ups, suspects, recoveries =
    transport_stats b.Bw.system
  in
  let appends, checkpoints =
    journal_stats b.Bw.system [ "branch_a"; "branch_b" ]
  in
  ( {
      r_fires = Shell.fires_executed b.Bw.shell_a + Shell.fires_executed b.Bw.shell_b;
      r_logical = tally.logical;
      r_metric = tally.metric;
      r_pending = pending;
      r_retransmits = retransmits;
      r_epoch_rejections = epoch_rejections;
      r_requeued = requeued;
      r_give_ups = give_ups;
      r_suspects = suspects;
      r_recoveries = recoveries;
      r_ep_down_send = Net.endpoint_down_at_send (Sys_.net b.Bw.system);
      r_ep_down_flight = Net.endpoint_down_in_flight (Sys_.net b.Bw.system);
      r_journal_appends = appends;
      r_journal_checkpoints = checkpoints;
      r_replayed = recovery_replayed b.Bw.system;
      r_safety_violations = !violations;
      r_cutovers = 0;
      r_epoch_retirements = 0;
      r_stale_rejections = 0;
      r_both_kept = [];
      r_both_violations = [];
      r_final =
        [ ("x_bal", Bw.x_bal b); ("y_bal", Bw.y_bal b);
          ("x_lim", Bw.x_lim b); ("y_lim", Bw.y_lim b) ];
      r_follows_valid = true;
    },
    faults,
    [],
    horizon )

(* ------------------------------------------------------------------ *)
(* Invariants and report                                               *)
(* ------------------------------------------------------------------ *)

let check_invariants spec ~churns ~oracle ~chaos =
  let durable = spec.durability <> Journal.None in
  let lost = max 0 (oracle.r_fires - chaos.r_fires) in
  let dup = max 0 (chaos.r_fires - oracle.r_fires) in
  let inv name ok detail = { inv_name = name; ok; detail } in
  (* Under a poll epoch, firings are timer-driven self-sends at the
     polling site, and a crashed endpoint drops self-sends without
     journaling them (there is no reliable protocol on the loopback
     path).  So a crash of the source site overlapping a poll epoch's
     dispatch window eats that window's samples (§4.2.3 — sampling
     misses what happens while it is not looking), and if the epoch
     churns away before the site restarts, no later tick retakes them.
     Exactly those schedules are excused from firing-count and bytewise
     final-state equality with the oracle; the both-epoch-guarantee and
     follows checks still hold them to "stale, never wrong".  Every
     other fault keeps the full obligations: cross-site fires are
     journaled and requeued, so crashes elsewhere must lose nothing. *)
  let poll_crash_overlap =
    let ops_rng, _, _, _ = streams spec in
    let _, inject_end = derive_ops spec ops_rng in
    let faults = schedule spec in
    let horizon = horizon_of ~inject_end faults in
    let rec poll_windows = function
      | [] -> []
      | c :: rest ->
        let stop = match rest with c2 :: _ -> c2.ch_at | [] -> horizon in
        (if String.equal c.ch_variant "poll" then [ (c.ch_at, stop) ] else [])
        @ poll_windows rest
    in
    let windows = poll_windows churns in
    List.exists
      (function
        | Crash { site; at; restart_at } when String.equal site Pw.site_a ->
          List.exists (fun (lo, hi) -> at < hi && restart_at > lo) windows
        | _ -> false)
      faults
  in
  let common =
    [
      inv "transport-drained" (chaos.r_pending = 0)
        (Printf.sprintf "%d unacknowledged envelopes after quiescence"
           chaos.r_pending);
      inv "crashes-are-metric-only" (chaos.r_logical = 0)
        (Printf.sprintf "%d logical notices (want 0: a remembered crash is late, not lost)"
           chaos.r_logical);
      inv "metric-notice-on-crash"
        (spec.crashes = 0 || chaos.r_metric > 0)
        (Printf.sprintf "%d metric notices for %d crashes" chaos.r_metric
           spec.crashes);
    ]
  in
  let specific =
    match spec.chaos_workload with
    | Payroll ->
      [
        inv "no-lost-firings"
          (lost = 0 || poll_crash_overlap)
          (if poll_crash_overlap then
             Printf.sprintf
               "oracle executed %d firings, chaos %d (source crash overlapped \
                a poll epoch: ticks are unjournaled self-sends; deferred to \
                guarantee checks)"
               oracle.r_fires chaos.r_fires
           else
             Printf.sprintf "oracle executed %d firings, chaos %d" oracle.r_fires
               chaos.r_fires);
        inv "no-duplicate-firings" (dup = 0)
          (Printf.sprintf "chaos executed %d firings beyond the oracle's" dup);
        inv "final-state-matches-oracle"
          (chaos.r_final = oracle.r_final || poll_crash_overlap)
          (if poll_crash_overlap && chaos.r_final <> oracle.r_final then
             "diverged, excused: a source crash overlapping a poll epoch \
              loses samples no later tick retakes (stale, never wrong — \
              the follows check below still binds)"
           else "target salaries after quiescence vs the fault-free run");
        inv "follows-guarantee-survives"
          ((not durable) || chaos.r_follows_valid)
          "metric failures must not invalidate the plain Follows guarantee";
      ]
      @
      if spec.churn = 0 then []
      else
        [
          inv "epochs-drained-and-retired"
            (chaos.r_epoch_retirements = chaos.r_cutovers
            && chaos.r_stale_rejections = 0)
            (Printf.sprintf
               "%d cutovers, %d retirements, %d stale-epoch rejections (want 0: \
                retirement waits out the drain here)"
               chaos.r_cutovers chaos.r_epoch_retirements
               chaos.r_stale_rejections);
          inv "both-epoch-guarantees-hold"
            (chaos.r_both_violations = [])
            (Printf.sprintf
               "guarantees kept by every epoch {%s}: %d violations%s"
               (String.concat ", " chaos.r_both_kept)
               (List.length chaos.r_both_violations)
               (match chaos.r_both_violations with
               | [] -> ""
               | v :: _ -> " — " ^ v));
        ]
    | Bank ->
      (* With crashes the sampled X <= Y count is reported, not asserted:
         limit grants travel as absolute values, so a grant decided
         before a crash and delivered (exactly once) after it can be
         stale and cross the limits until the next redistribution — a
         pre-existing property of the demarcation encoding, not of the
         recovery layer.  On crash-free schedules delivery delay is
         bounded by the retransmission chain and the window never
         opens. *)
      if spec.crashes = 0 then
        [
          inv "x-leq-y-always" (chaos.r_safety_violations = 0)
            (Printf.sprintf "%d sampled instants violated X <= Y"
               chaos.r_safety_violations);
        ]
      else []
  in
  (specific @ common, lost, dup)

let static_rules w =
  (* A throwaway fault-free instance: workload constructors install the
     same rules every run, so its specifications are the workload's. *)
  let config = Sys_.Config.seeded 0 in
  let system =
    match w with
    | Payroll ->
      let p = Pw.create ~config ~employees:1 () in
      Pw.install_propagation p;
      p.Pw.system
    | Bank ->
      let b = Bw.create ~config ~policy:Cm_core.Demarcation.Conservative () in
      b.Bw.system
  in
  (Sys_.interface_rules system, Sys_.strategy_rules system, Sys_.locator system)

let run spec =
  let (oracle, _, _, _), (chaos, faults, churns, horizon) =
    match spec.chaos_workload with
    | Payroll -> (run_payroll spec ~faulty:false, run_payroll spec ~faulty:true)
    | Bank -> (run_bank spec ~faulty:false, run_bank spec ~faulty:true)
  in
  let invariants, lost, dup = check_invariants spec ~churns ~oracle ~chaos in
  {
    spec;
    faults;
    churns;
    horizon;
    oracle_fires = oracle.r_fires;
    chaos_fires = chaos.r_fires;
    lost_firings = lost;
    duplicate_firings = dup;
    logical_notices = chaos.r_logical;
    metric_notices = chaos.r_metric;
    transport_pending = chaos.r_pending;
    retransmits = chaos.r_retransmits;
    epoch_rejections = chaos.r_epoch_rejections;
    requeued = chaos.r_requeued;
    give_ups = chaos.r_give_ups;
    suspects = chaos.r_suspects;
    recoveries = chaos.r_recoveries;
    endpoint_down_at_send = chaos.r_ep_down_send;
    endpoint_down_in_flight = chaos.r_ep_down_flight;
    journal_appends = chaos.r_journal_appends;
    journal_checkpoints = chaos.r_journal_checkpoints;
    replayed_records = chaos.r_replayed;
    safety_violations = chaos.r_safety_violations;
    cutovers = chaos.r_cutovers;
    epoch_retirements = chaos.r_epoch_retirements;
    stale_epoch_rejections = chaos.r_stale_rejections;
    both_epoch_guarantees = chaos.r_both_kept;
    both_epoch_violations = chaos.r_both_violations;
    final_state_matches =
      (match spec.chaos_workload with
       | Payroll -> chaos.r_final = oracle.r_final
       | Bank -> true);
    invariants;
  }

let passed report = List.for_all (fun i -> i.ok) report.invariants

let fault_to_string = function
  | Crash { site; at; restart_at } ->
    Printf.sprintf "crash %s @ %.2f -> restart @ %.2f" site at restart_at
  | Loss_window { at; until; drop; dup } ->
    Printf.sprintf "loss drop=%.3f dup=%.3f @ %.2f -> %.2f" drop dup at until
  | Partition { at; until } ->
    Printf.sprintf "partition @ %.2f -> %.2f" at until

let report_to_string r =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "chaos report";
  line
    "workload=%s seed=%d events=%d crashes=%d crash_len=[%.1f,%.1f] durability=%s churn=%d"
    (workload_to_string r.spec.chaos_workload)
    r.spec.seed r.spec.events r.spec.crashes r.spec.crash_min_len
    r.spec.crash_max_len
    (Journal.durability_to_string r.spec.durability)
    r.spec.churn;
  line "schedule:";
  List.iter (fun f -> line "  %s" (fault_to_string f)) r.faults;
  if r.churns <> [] then begin
    line "rule churn:";
    List.iter
      (fun c -> line "  cutover to %s @ %.2f" c.ch_variant c.ch_at)
      r.churns
  end;
  line "results (quiesced @ %.2f):" r.horizon;
  line "  firings oracle=%d chaos=%d lost=%d duplicated=%d" r.oracle_fires
    r.chaos_fires r.lost_firings r.duplicate_firings;
  line "  notices logical=%d metric=%d" r.logical_notices r.metric_notices;
  line "  transport pending=%d retransmits=%d epoch_rejections=%d requeued=%d"
    r.transport_pending r.retransmits r.epoch_rejections r.requeued;
  line "  transport give_ups=%d suspects=%d recoveries=%d" r.give_ups r.suspects
    r.recoveries;
  line "  endpoint_down at_send=%d in_flight=%d" r.endpoint_down_at_send
    r.endpoint_down_in_flight;
  line "  journal appends=%d checkpoints=%d replayed=%d" r.journal_appends
    r.journal_checkpoints r.replayed_records;
  if r.spec.churn > 0 then begin
    line "  evolution cutovers=%d retirements=%d stale_rejections=%d" r.cutovers
      r.epoch_retirements r.stale_epoch_rejections;
    line "  both-epoch guarantees: %s"
      (match r.both_epoch_guarantees with
      | [] -> "(none claimed by every epoch)"
      | names -> String.concat ", " names)
  end;
  (match r.spec.chaos_workload with
   | Payroll -> line "  final state matches oracle: %b" r.final_state_matches
   | Bank -> line "  safety violations: %d" r.safety_violations);
  line "invariants:";
  List.iter
    (fun i ->
      line "  %s %s — %s" (if i.ok then "ok  " else "FAIL") i.inv_name i.detail)
    r.invariants;
  line "verdict: %s" (if passed r then "PASS" else "FAIL");
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Self-healing (--heal): silent drops, a bad rollout, live monitors   *)
(* ------------------------------------------------------------------ *)

(* A §5 Silent_drop window on the source translator: writes keep landing
   in the ground-truth trace, but the notifications that would propagate
   them die without any failure notice.  The post-hoc fold only sees the
   damage at the end of the run; the streaming staleness verdict must
   see it within κ plus one monitor tick. *)
type drop_window = { dw_at : float; dw_until : float }

type heal_report = {
  h_spec : spec;
  h_drops : drop_window list;
  h_bad_cutover_at : float;
  h_flush_at : float;
  h_horizon : float;
  h_kappa : float;
  h_reads : int;
  h_replica_reads : int;
  h_master_reads : int;
  h_poll_reads : int;
  h_stale_serves : int;
  h_quarantines : int;
  h_probes : int;
  h_readmissions : int;
  h_stale_onsets : float list;
  h_stream_violations : int;
  h_rollbacks : int;
  h_rollback_journaled : bool;
  h_final_epoch : int;
  h_fold_mismatches : string list;
  h_invariants : invariant list;
}

(* Windows are long relative to κ (~10 s for the payroll program) so a
   write dropped early in a window is guaranteed to age out of the κ
   horizon before the window lifts — each window should produce a real
   staleness onset, not just a near miss. *)
let derive_drops spec rng ~inject_end =
  let n = 2 + (spec.events / 200) in
  let slot = inject_end /. float_of_int n in
  List.init n (fun i ->
      let s = float_of_int i *. slot in
      let hi = Float.min 45.0 (0.7 *. slot) in
      let dur = Prng.uniform_in rng ~lo:(Float.min 20.0 (0.5 *. hi)) ~hi in
      let at = s +. Prng.uniform_in rng ~lo:0.0 ~hi:(slot -. dur) in
      { dw_at = at; dw_until = at +. dur })

(* Drops first, then the bad-cutover instant, so neither draw shifts the
   other; the reader arrivals consume the same stream lazily during the
   run, after both up-front draws. *)
let heal_schedule spec =
  let ops_rng, _, _, heal_rng = streams spec in
  let _, inject_end = derive_ops spec ops_rng in
  let drops = derive_drops spec heal_rng ~inject_end in
  let bad_at =
    Prng.uniform_in heal_rng ~lo:(0.3 *. inject_end) ~hi:(0.7 *. inject_end)
  in
  (drops, bad_at)

let run_heal spec =
  if spec.chaos_workload <> Payroll then
    invalid_arg "Chaos.run_heal: heal schedules are defined over the payroll workload";
  let config = Sys_.Config.with_monitor true (chaos_config spec) in
  let p = Pw.create ~config ~employees:(Array.length employees) () in
  Pw.install_propagation p;
  let sim = Sys_.sim p.Pw.system in
  let monitor =
    match Sys_.monitor p.Pw.system with
    | Some m -> m
    | None -> failwith "Chaos.run_heal: monitor not enabled"
  in
  (* Same augmentation as run_payroll: the op stream only writes site A,
     so declaring no-spontaneous-write on the target is true by
     construction and is what lets Derive prove a κ at all. *)
  let interfaces =
    Sys_.interface_rules p.Pw.system
    @ [ Cm_core.Interface.no_spontaneous_write Pw.target_pattern ]
  in
  let route =
    Route.create ~interfaces p.Pw.system ~constraints:[ ("Salary1", "Salary2") ]
  in
  Monitor.note_initial monitor p.Pw.initial;
  let kappa =
    match Sys_.copy_qualifies p.Pw.system ~source:"Salary1" ~target:"Salary2" with
    | Ok k -> k
    | Error e -> failwith ("Chaos.run_heal: copy does not qualify: " ^ e)
  in
  let evo =
    Evolution.create
      ~constraints:[ ("Salary1", "Salary2") ]
      ~required:[ ("Salary1", "Salary2") ]
      ~interfaces p.Pw.system
  in
  let ops_rng, _, _, heal_rng = streams spec in
  let ops, inject_end = derive_ops spec ops_rng in
  let drops = derive_drops spec heal_rng ~inject_end in
  let bad_at =
    Prng.uniform_in heal_rng ~lo:(0.3 *. inject_end) ~hi:(0.7 *. inject_end)
  in
  List.iter
    (fun op ->
      Pw.schedule_update p ~at:op.op_at ~emp:employees.(op.op_slot)
        ~salary:op.op_value)
    ops;
  let health = Tr_rel.health p.Pw.tr_a in
  List.iter
    (fun w ->
      Sim.schedule_at sim w.dw_at (fun () -> Health.set health Health.Silent_drop);
      Sim.schedule_at sim w.dw_until (fun () -> Health.set health Health.Healthy))
    drops;
  (* The bad rollout: an empty program has no propagation chain to the
     copy, so Derive classifies every guarantee of the required pair as
     Lost and Evolution must roll the cutover back on the spot. *)
  let bad_strategy =
    {
      Strategy.strategy_name = "drop-propagation";
      description = "bad rollout: empty program, loses every guarantee";
      rules = [];
      aux_init = [];
    }
  in
  Sim.schedule_at sim bad_at (fun () ->
      match Evolution.evolve ~quiesce:false evo bad_strategy with
      | Ok _ -> ()
      | Error e -> failwith ("Chaos: bad cutover failed: " ^ e));
  (* Flush: one fresh value per employee after the last drop window, so
     every copy converges and every quarantine can probe back to
     service.  Values sit outside the op range (1000–9999): a same-value
     write takes nothing and fires no notification, so a PRNG-drawn
     flush could silently leave a copy stale forever. *)
  let flush_at =
    List.fold_left (fun acc w -> Float.max acc w.dw_until) inject_end drops
    +. 10.0
  in
  Array.iteri
    (fun idx emp ->
      Pw.schedule_update p
        ~at:(flush_at +. (0.5 *. float_of_int idx))
        ~emp ~salary:(20000 + idx))
    employees;
  let horizon = flush_at +. 60.0 in
  Sim.schedule_at sim (horizon -. 30.0) (fun () ->
      List.iter
        (fun epoch ->
          match Evolution.retire evo ~epoch with
          | Ok () -> ()
          | Error e -> failwith ("Chaos: heal retire failed: " ^ e))
        (Evolution.draining evo));
  (* Audits.  The router already refuses to serve a copy whose monitor
     reports it stale (quarantine plus a per-read re-check), so the
     stale-serve counter is 0 by construction — it is the tripwire that
     says so from outside the router. *)
  let stale_serves = ref 0 in
  Route.on_decision route (fun d ->
      match d.Route.d_outcome with
      | Route.Replica ->
        if
          Monitor.copy_stale monitor ~source:d.Route.d_base
            ~target:d.Route.d_served_base
        then incr stale_serves
      | Route.Master | Route.Forced_poll -> ());
  let onsets = ref [] in
  Monitor.on_staleness monitor (fun ~source:_ ~target:_ ~at ~stale ->
      if stale then onsets := at :: !onsets);
  let stream_violations = ref 0 in
  Monitor.on_violation monitor (fun _ -> incr stream_violations);
  Readers.open_loop sim ~rng:heal_rng
    ~clients:[ (Pw.site_a, 20); (Pw.site_b, 30) ]
    ~rate_per_client:0.02 ~until:horizon
    (fun ~site -> ignore (Route.read route ~client_site:site "Salary1"));
  (* One deterministic sweep near the horizon: even if the Poisson tail
     is quiet, a read considers (and so probes) every copy after the
     flush has landed. *)
  Sim.schedule_at sim (horizon -. 1.0) (fun () ->
      ignore (Route.plan route ~client_sites:[ Pw.site_b ]));
  Sys_.run p.Pw.system ~until:horizon;
  (* Post-run audits — live verdicts first, then finalize for the
     streaming-vs-fold comparison (finalize is one-shot). *)
  let copies_fresh =
    not (Monitor.copy_stale monitor ~source:"Salary1" ~target:"Salary2")
  in
  let q_final = Route.quarantined route in
  let rollbacks = Evolution.rollbacks evo in
  let requalifies =
    match Sys_.copy_qualifies p.Pw.system ~source:"Salary1" ~target:"Salary2" with
    | Ok _ -> true
    | Error _ -> false
  in
  let rollback_journaled =
    match Sys_.journals p.Pw.system with
    | None -> true  (* durability None: nothing to check *)
    | Some _ ->
      List.for_all
        (fun site ->
          match Sys_.journal p.Pw.system ~site with
          | None -> true
          | Some j ->
            List.exists
              (function Journal.Epoch_rollback _ -> true | _ -> false)
              (Journal.records j))
        [ Pw.site_a; Pw.site_b ]
  in
  Monitor.finalize monitor ~horizon;
  let fold_mismatches =
    List.filter_map
      (fun (g, v) ->
        let rep = Sys_.check_guarantee ~initial:p.Pw.initial p.Pw.system g in
        if
          Bool.equal v.Monitor.v_holds rep.Guarantee.holds
          && v.Monitor.v_points = rep.Guarantee.checked_points
        then None
        else
          Some
            (Printf.sprintf
               "%s: stream holds=%b points=%d, fold holds=%b points=%d"
               (Guarantee.to_string g) v.Monitor.v_holds v.Monitor.v_points
               rep.Guarantee.holds rep.Guarantee.checked_points))
      (Monitor.family_verdicts monitor ~source:"Salary1" ~target:"Salary2")
  in
  let pending, _, _, _, _, _, _ = transport_stats p.Pw.system in
  (* A window is only obliged to produce a staleness onset when some
     write was dropped early enough to age out of the κ horizon before
     the window lifts; the +2.0 covers the 1.0 s monitor tick plus
     scheduling slack.  The bound check is the remediation-latency
     contract: every onset the monitor reports must be attributable to a
     drop window, detected within κ + one tick of the window's end. *)
  let expected_onset =
    List.exists
      (fun w ->
        List.exists
          (fun op -> op.op_at > w.dw_at && op.op_at +. kappa +. 2.0 < w.dw_until)
          ops)
      drops
  in
  let out_of_bound =
    List.filter
      (fun t ->
        not
          (List.exists
             (fun w -> t >= w.dw_at && t <= w.dw_until +. kappa +. 2.0)
             drops))
      !onsets
  in
  let quarantines = Route.quarantines route in
  let inv name ok detail = { inv_name = name; ok; detail } in
  let invariants =
    [
      inv "no-stale-serve" (!stale_serves = 0)
        (Printf.sprintf
           "%d reads served from a copy its monitor reported stale (want 0)"
           !stale_serves);
      inv "silent-drop-detected"
        ((not expected_onset) || (List.length !onsets >= 1 && quarantines >= 1))
        (if expected_onset then
           Printf.sprintf
             "%d staleness onsets, %d quarantines for %d silent-drop windows"
             (List.length !onsets) quarantines (List.length drops)
         else
           "no window held a dropped write past the κ horizon; nothing to detect");
      inv "staleness-detected-within-bound" (out_of_bound = [])
        (match out_of_bound with
        | [] ->
          Printf.sprintf
            "every onset within [window start, window end + κ(%.2f) + tick + 1.0]"
            kappa
        | t :: _ ->
          Printf.sprintf "onset at %.2f is outside every drop window's bound" t);
      inv "required-rollback"
        (List.length rollbacks = 1 && rollback_journaled && requalifies)
        (Printf.sprintf
           "%d rollbacks (want 1: the bad rollout), journaled=%b, copy \
            qualifies again=%b"
           (List.length rollbacks) rollback_journaled requalifies);
      inv "reads-fail-over-to-master"
        (quarantines = 0 || Route.reads_by route Route.Master >= 1)
        (Printf.sprintf "%d master reads while copies were quarantined"
           (Route.reads_by route Route.Master));
      inv "quarantine-cleared" (q_final = [])
        (Printf.sprintf "%d copies still quarantined at the horizon (want 0)"
           (List.length q_final));
      inv "copies-fresh-at-horizon" copies_fresh
        "the flush must converge every copy before the run ends";
      inv "streaming-equals-fold" (fold_mismatches = [])
        (match fold_mismatches with
        | [] -> "every streamed verdict equals the post-hoc fold"
        | m :: _ -> m);
      inv "transport-drained" (pending = 0)
        (Printf.sprintf "%d unacknowledged envelopes after quiescence" pending);
    ]
  in
  {
    h_spec = spec;
    h_drops = drops;
    h_bad_cutover_at = bad_at;
    h_flush_at = flush_at;
    h_horizon = horizon;
    h_kappa = kappa;
    h_reads = Route.reads route;
    h_replica_reads = Route.reads_by route Route.Replica;
    h_master_reads = Route.reads_by route Route.Master;
    h_poll_reads = Route.reads_by route Route.Forced_poll;
    h_stale_serves = !stale_serves;
    h_quarantines = quarantines;
    h_probes = Route.probes route;
    h_readmissions = Route.readmissions route;
    h_stale_onsets = List.sort Float.compare !onsets;
    h_stream_violations = !stream_violations;
    h_rollbacks = List.length rollbacks;
    h_rollback_journaled = rollback_journaled;
    h_final_epoch = Evolution.current_epoch evo;
    h_fold_mismatches = fold_mismatches;
    h_invariants = invariants;
  }

let heal_passed r = List.for_all (fun i -> i.ok) r.h_invariants

let heal_report_to_string r =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "heal report";
  line "workload=payroll seed=%d events=%d durability=%s monitor_tick=1.0"
    r.h_spec.seed r.h_spec.events
    (Journal.durability_to_string r.h_spec.durability);
  line "schedule:";
  List.iter
    (fun w -> line "  silent-drop @ %.2f -> %.2f" w.dw_at w.dw_until)
    r.h_drops;
  line "  bad cutover (drop-propagation) @ %.2f" r.h_bad_cutover_at;
  line "  flush @ %.2f" r.h_flush_at;
  line "results (quiesced @ %.2f, kappa=%.2f):" r.h_horizon r.h_kappa;
  line "  reads total=%d replica=%d master=%d forced_poll=%d stale_serves=%d"
    r.h_reads r.h_replica_reads r.h_master_reads r.h_poll_reads r.h_stale_serves;
  line "  quarantine entries=%d probes=%d readmissions=%d" r.h_quarantines
    r.h_probes r.h_readmissions;
  line "  staleness onsets: %s"
    (match r.h_stale_onsets with
    | [] -> "(none)"
    | ts -> String.concat ", " (List.map (Printf.sprintf "%.2f") ts));
  line "  stream violations=%d" r.h_stream_violations;
  line "  rollbacks=%d journaled=%b final_epoch=%d" r.h_rollbacks
    r.h_rollback_journaled r.h_final_epoch;
  line "  fold mismatches: %s"
    (match r.h_fold_mismatches with
    | [] -> "(none)"
    | ms -> String.concat "; " ms);
  line "invariants:";
  List.iter
    (fun i ->
      line "  %s %s — %s" (if i.ok then "ok  " else "FAIL") i.inv_name i.detail)
    r.h_invariants;
  line "verdict: %s" (if heal_passed r then "PASS" else "FAIL");
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Sharded chaos (--shards): crashes under the multi-domain fabric    *)
(* ------------------------------------------------------------------ *)

module Fabric = Cm_shard.Shard.Fabric
module Obs = Cm_core.Obs

type shard_spec = {
  ss_seed : int;
  ss_sites : int;
  ss_shards : int;
  ss_events : int;
  ss_crashes : int;
  ss_durability : Journal.durability;
}

let default_shard_spec =
  {
    ss_seed = 42;
    ss_sites = 6;
    ss_shards = 2;
    ss_events = 60;
    ss_crashes = 2;
    ss_durability = Journal.Journal_with_checkpoint;
  }

type shard_report = {
  sr_spec : shard_spec;
  sr_faults : fault list;
  sr_horizon : float;
  sr_digest : string;
  sr_events : int;
  sr_fires : int;
  sr_restarts : int;
  sr_recovered_crashes : int;
  sr_replayed : int;
  sr_live_during_crash : int;
  sr_invariants : invariant list;
}

let shard_site i = Printf.sprintf "s%d" i
let shard_base i = Printf.sprintf "X%d" i

let shard_locator item =
  let b = item.Cm_rule.Item.base in
  if String.length b > 1 && b.[0] = 'X' then
    match int_of_string_opt (String.sub b 1 (String.length b - 1)) with
    | Some i -> shard_site i
    | None -> shard_site 0
  else shard_site 0

(* A notification ring: U at site i fires C at site i+1 (a cross-site,
   and — under [i mod shards] assignment — cross-shard message), which
   settles locally as a W.  Workload U events are injected only at even
   sites and crashes hit only odd sites, so an injection never lands on
   a crashed shell and "one shard keeps firing while another is down"
   holds by construction. *)
let shard_rules m =
  let buf = Buffer.create 256 in
  for i = 0 to m - 1 do
    Buffer.add_string buf
      (Printf.sprintf "u%d: U(%s, v) ->[5] C(%s, v)\n" i (shard_base i)
         (shard_base ((i + 1) mod m)));
    Buffer.add_string buf
      (Printf.sprintf "c%d: C(%s, v) ->[5] W(%s, v)\n" i (shard_base i)
         (shard_base i))
  done;
  Cm_rule.Parser.parse_rules (Buffer.contents buf)

(* Ops and faults are pure functions of the spec, derived from keyed
   streams (never the run's own wheels), so the schedule is identical at
   every shard count.  Distinct fractional offsets keep op times, crash
   instants and deliveries off shared instants — cross-layout digest
   equality needs causally unrelated events to stay on distinct
   times. *)
let shard_schedule spec =
  if spec.ss_sites < 4 then
    invalid_arg "Chaos.shard_schedule: need at least 4 sites";
  let m = spec.ss_sites in
  let ops_rng = Prng.of_key ~seed:spec.ss_seed "shard-chaos-ops" in
  let ops =
    List.init spec.ss_events (fun idx ->
        let slot = 2 * Prng.int ops_rng ((m + 1) / 2) in
        {
          op_at = 2.0 +. (0.83 *. float_of_int idx) +. (0.0019 *. float_of_int slot);
          op_slot = slot;
          op_value = 1000 + (idx * 13) + slot;
        })
  in
  let last_op =
    List.fold_left (fun acc o -> Float.max acc o.op_at) 0.0 ops
  in
  let fault_rng = Prng.of_key ~seed:spec.ss_seed "shard-chaos-faults" in
  let faults = ref [] in
  let cursor = ref 8.0 in
  for _ = 1 to spec.ss_crashes do
    let odd_count = m / 2 in
    let site = shard_site ((2 * Prng.int fault_rng odd_count) + 1) in
    let at = !cursor +. 2.0 +. float_of_int (Prng.int fault_rng 4) +. 0.41 in
    let len = 6.0 +. float_of_int (Prng.int fault_rng 10) +. 0.27 in
    let restart_at = at +. len in
    cursor := restart_at +. 3.0;
    faults := Crash { site; at; restart_at } :: !faults
  done;
  let faults =
    if spec.ss_crashes > 0 && m >= 4 then
      (* one partitioned ring edge (even source -> odd target) for
         mirrored-flag coverage *)
      let at = 5.0 +. float_of_int (Prng.int fault_rng 6) +. 0.19 in
      Partition { at; until = at +. 6.0 } :: !faults
    else !faults
  in
  let last_restart =
    List.fold_left
      (fun acc -> function
        | Crash { restart_at; _ } -> Float.max acc restart_at
        | Loss_window { until; _ } | Partition { until; _ } -> Float.max acc until)
      0.0 faults
  in
  let horizon = Float.max last_op last_restart +. 40.0 in
  (ops, List.rev faults, horizon)

let shard_schedule_faults spec =
  let _, faults, _ = shard_schedule spec in
  faults

let run_sharded spec =
  if spec.ss_shards < 1 then invalid_arg "Chaos.run_sharded: shards < 1";
  let m = spec.ss_sites in
  let ops, faults, horizon = shard_schedule spec in
  let config =
    Sys_.Config.(
      seeded spec.ss_seed
      |> with_shards spec.ss_shards
      |> with_durability spec.ss_durability
      |> with_obs (Obs.create ()))
  in
  let fab =
    Fabric.create ~config ~keyed_single:true
      ~assign:(fun s ->
        match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
        | Some i -> i mod spec.ss_shards
        | None -> 0)
      shard_locator
  in
  for i = 0 to m - 1 do
    ignore (Fabric.add_shell fab ~site:(shard_site i))
  done;
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      if i <> j then
        Fabric.set_latency fab ~from_site:(shard_site i) ~to_site:(shard_site j)
          { Net.base = 0.4 +. (0.0071 *. float_of_int ((i * m) + j)); jitter = 0.0 }
    done
  done;
  Fabric.install fab
    {
      Strategy.strategy_name = "shard-chaos-ring";
      description = "cross-shard notification ring";
      rules = shard_rules m;
      aux_init = [];
    };
  List.iter
    (function
      | Crash { site; at; restart_at } ->
        Fabric.schedule_crash fab ~site ~at;
        Fabric.schedule_restart fab ~site ~at:restart_at
      | Partition { at; until } ->
        Fabric.schedule_partition fab ~from_site:(shard_site 0)
          ~to_site:(shard_site 1) ~at ~until
      | Loss_window _ -> ())
    faults;
  List.iter
    (fun op ->
      let s = shard_site op.op_slot in
      let shell = Fabric.shell_for fab ~site:s in
      let emit = Shell.emitter_for shell ~site:s in
      Fabric.at fab ~site:s op.op_at (fun () ->
          ignore
            (emit
               {
                 Cm_rule.Event.name = "U";
                 args =
                   [
                     Cm_rule.Event.Ai (Cm_rule.Item.make (shard_base op.op_slot));
                     Cm_rule.Event.Av (Cm_rule.Value.Int op.op_value);
                   ];
               }
               ~kind:Cm_rule.Event.Spontaneous)))
    ops;
  Fabric.run fab ~until:horizon;
  let merged = Fabric.merged_events fab in
  let live_during_crash =
    List.fold_left
      (fun acc (e : Cm_rule.Event.t) ->
        let inside =
          List.exists
            (function
              | Crash { site; at; restart_at } ->
                e.Cm_rule.Event.site <> site
                && e.Cm_rule.Event.time > at
                && e.Cm_rule.Event.time < restart_at
              | _ -> false)
            faults
        in
        if inside then acc + 1 else acc)
      0 merged
  in
  let durable = spec.ss_durability <> Journal.None in
  let restarts = Fabric.counter_total fab "recovery_restarts" in
  let crash_count = Fabric.counter_total fab "recovery_crashes" in
  let replayed = Fabric.counter_total fab "recovery_replayed_records" in
  let fires = Fabric.counter_total fab "shell_fires_executed" in
  let inv inv_name ok detail = { inv_name; ok; detail } in
  let invariants =
    [
      inv "fires-executed"
        (spec.ss_events = 0 || fires > 0)
        (Printf.sprintf "%d rule firings executed across shards" fires);
      inv "crashes-recovered"
        ((not durable) || (restarts = spec.ss_crashes && crash_count = spec.ss_crashes))
        (Printf.sprintf
           "%d crash(es) scheduled, %d recovery crash records, %d restarts"
           spec.ss_crashes crash_count restarts);
      inv "progress-during-crash"
        (spec.ss_crashes = 0 || live_during_crash > 0)
        (Printf.sprintf
           "%d events at live sites inside crash windows (other shards keep \
            firing while one site is down)"
           live_during_crash);
      inv "trace-nonempty"
        (spec.ss_events = 0 || merged <> [])
        (Printf.sprintf "%d merged trace events" (List.length merged));
    ]
  in
  {
    sr_spec = spec;
    sr_faults = faults;
    sr_horizon = horizon;
    sr_digest = Fabric.trace_digest fab;
    sr_events = List.length merged;
    sr_fires = fires;
    sr_restarts = restarts;
    sr_recovered_crashes = crash_count;
    sr_replayed = replayed;
    sr_live_during_crash = live_during_crash;
    sr_invariants = invariants;
  }

let shard_passed r = List.for_all (fun i -> i.ok) r.sr_invariants

(* The shard count is deliberately absent: one seed must print one
   report at every layout, and CI diffs the output across N literally. *)
let shard_report_to_string r =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "sharded chaos report";
  line "seed=%d sites=%d events=%d crashes=%d durability=%s" r.sr_spec.ss_seed
    r.sr_spec.ss_sites r.sr_spec.ss_events r.sr_spec.ss_crashes
    (Journal.durability_to_string r.sr_spec.ss_durability);
  line "schedule:";
  List.iter (fun f -> line "  %s" (fault_to_string f)) r.sr_faults;
  line "results (quiesced @ %.2f):" r.sr_horizon;
  line "  canonical digest %s" r.sr_digest;
  line "  trace events=%d firings=%d" r.sr_events r.sr_fires;
  line "  recovery crashes=%d restarts=%d replayed=%d" r.sr_recovered_crashes
    r.sr_restarts r.sr_replayed;
  line "  live events during crash windows=%d" r.sr_live_during_crash;
  line "invariants:";
  List.iter
    (fun i ->
      line "  %s %s — %s" (if i.ok then "ok  " else "FAIL") i.inv_name i.detail)
    r.sr_invariants;
  line "verdict: %s" (if shard_passed r then "PASS" else "FAIL");
  Buffer.contents b
