(* Shared plumbing for cmtool subcommands: the flags every command
   re-declared by hand (--json, --deny-warnings, --no-check, --seed),
   the CONFIG [RULES…] positional convention, config/rule-file loading
   with uniform error reporting, the interface-merge semantics shared by
   check/evolve/route, and the static-check preflight gates. *)

open Cmdliner
module Interface = Cm_core.Interface
module Analysis = Cm_analysis.Analysis

(* ---- common flags ---- *)

let json_arg ~doc = Arg.(value & flag & info [ "json" ] ~doc)

let deny_warnings_arg ~doc =
  Arg.(value & flag & info [ "deny-warnings" ] ~doc)

let no_check_arg =
  Arg.(
    value & flag
    & info [ "no-check" ]
        ~doc:"Skip the static rule check that normally gates this command")

let seed_arg ?(default = 42) ?(doc = "Simulation seed") () =
  Arg.(value & opt int default & info [ "seed" ] ~docv:"N" ~doc)

(* ---- CONFIG [RULES…] positionals ---- *)

let config_pos = Arg.(required & pos 0 (some file) None & info [] ~docv:"CONFIG")

let rules_pos ~after ~doc = Arg.(value & pos_right after file [] & info [] ~docv:"RULES" ~doc)

(* ---- file loading with uniform diagnostics ---- *)

let read_file path = In_channel.with_open_text path In_channel.input_all

let parse_rule_file file =
  match Cm_rule.Parser.parse_rules (read_file file) with
  | exception Cm_rule.Parser.Parse_error { line; message; _ } ->
    Printf.eprintf "%s:%d: parse error: %s\n" file line message;
    Error 1
  | exception Sys_error m ->
    Printf.eprintf "%s\n" m;
    Error 1
  | rules -> Ok rules

let parse_rule_files files =
  List.fold_left
    (fun acc f ->
      match acc, parse_rule_file f with
      | Error c, _ | _, Error c -> Error c
      | Ok rs, Ok more -> Ok (rs @ more))
    (Ok []) files

let load_config file =
  match Cm_core.Cmrid.parse_file file with
  | Error errors ->
    List.iter
      (fun (e : Cm_core.Cmrid.error) ->
        Printf.eprintf "%s:%d: %s\n" file e.Cm_core.Cmrid.e_line
          e.Cm_core.Cmrid.e_msg)
      errors;
    Error 1
  | Ok config -> Ok config

let build_config ?sys_config file =
  match load_config file with
  | Error c -> Error c
  | Ok config -> (
    match Cm_core.Toolkit.build ?config:sys_config config with
    | Error m ->
      Printf.eprintf "%s: %s\n" file m;
      Error 1
    | Ok built -> Ok (config, built))

(* ---- interface merge (check/evolve/route agree on it) ---- *)

(* Base item an interface statement serves: the LHS item if there is one,
   else the first RHS item (periodic-notify rules have a P(...) LHS). *)
let iface_base (r : Cm_rule.Rule.t) =
  match Cm_rule.Template.item_base r.Cm_rule.Rule.lhs with
  | Some b -> Some b
  | None ->
    List.find_map
      (fun (s : Cm_rule.Rule.step) ->
        Cm_rule.Template.item_base s.Cm_rule.Rule.template)
      (Cm_rule.Rule.rhs_steps r)

let iface_key r =
  match Interface.classify r with
  | None -> None
  | Some kind -> Option.map (fun b -> (kind, b)) (iface_base r)

(* Split extra rule files against a system's synthesized interfaces:
   interface statements extend the declared set — except restatements of
   a capability the translators already declared, which are the same
   interface, not a second channel — and everything else is strategy. *)
let merge_program ~system extra_rules =
  let is_iface r = Interface.classify r <> None in
  let synth = Cm_core.System.interface_rules system in
  let synth_keys = List.filter_map iface_key synth in
  let extra_ifaces, extra_strategy = List.partition is_iface extra_rules in
  let extra_ifaces =
    List.filter
      (fun r ->
        match iface_key r with
        | Some k -> not (List.mem k synth_keys)
        | None -> true)
      extra_ifaces
  in
  ( synth @ extra_ifaces,
    Cm_core.System.strategy_rules system @ extra_strategy )

(* ---- preflight gates ---- *)

(* Static preflight over a built-in workload's rule set: refuse to run a
   scenario whose specifications the checker rejects (gate with
   --no-check).  Warnings never block, and are kept off the output so
   byte-compared runs stay stable. *)
let preflight ~label ~no_check workload =
  no_check
  ||
  let interfaces, strategy, locator = Cm_chaos.Chaos.static_rules workload in
  let findings = Analysis.check_rules ~file:label ~interfaces ~strategy ~locator () in
  let errors, _, _ = Analysis.summary findings in
  if errors = 0 then true
  else begin
    List.iter
      (fun (f : Analysis.finding) ->
        if f.Analysis.severity = Analysis.Error then
          Printf.eprintf "%s\n" (Analysis.finding_to_string f))
      findings;
    Printf.eprintf
      "%s: static check found %d error(s) in the workload's rules; \
       pass --no-check to run anyway\n"
      label errors;
    false
  end

(* Same gate over a CM-RID config + rule files (cmtool route). *)
let preflight_config ~no_check ~file rule_files =
  no_check
  ||
  match (read_file file, List.map (fun f -> (f, read_file f)) rule_files) with
  | exception Sys_error m ->
    Printf.eprintf "%s\n" m;
    false
  | text, rule_files ->
    let findings = Analysis.check_config ~rule_files ~file text in
    let errors, _, _ = Analysis.summary findings in
    if errors = 0 then true
    else begin
      List.iter
        (fun (f : Analysis.finding) ->
          if f.Analysis.severity = Analysis.Error then
            Printf.eprintf "%s\n" (Analysis.finding_to_string f))
        findings;
      Printf.eprintf
        "%s: static check found %d error(s); pass --no-check to run anyway\n"
        file errors;
      false
    end

(* ---- output ---- *)

let emit ~out text =
  match out with
  | None ->
    print_string text;
    0
  | Some path ->
    Out_channel.with_open_text path (fun oc -> output_string oc text);
    Printf.printf "written to %s\n" path;
    0
