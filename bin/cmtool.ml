(* cmtool: command-line front end to the constraint-management toolkit.

   - parse:    check a rule file (interfaces or strategies) and print the
               normalized rules
   - suggest:  list applicable strategies + guarantees for a constraint,
               given the interfaces each item offers
   - config:   validate a CM-RID file and show what each source offers
   - demo:     run the §4.2 payroll scenario and report guarantees

   Flag conventions, positional parsing, file loading, and the static
   preflight gates shared by the subcommands live in Cmtool_cli. *)

open Cmdliner
module Interface = Cm_core.Interface
module Suggest = Cm_core.Suggest
module Analysis = Cm_analysis.Analysis

let read_file = Cmtool_cli.read_file
let preflight = Cmtool_cli.preflight
let no_check_arg = Cmtool_cli.no_check_arg

(* ---- parse ---- *)

let parse_cmd_run file =
  match Cm_rule.Parser.parse_rules (read_file file) with
  | exception Cm_rule.Parser.Parse_error { line; message; _ } ->
    Printf.eprintf "%s:%d: parse error: %s\n" file line message;
    1
  | exception Sys_error m ->
    Printf.eprintf "%s\n" m;
    1
  | rules ->
    Printf.printf "# %d rule(s)\n" (List.length rules);
    List.iter
      (fun r ->
        let kind =
          match Interface.classify r with
          | Some k -> " # " ^ Interface.kind_to_string k ^ " interface"
          | None -> ""
        in
        Printf.printf "%s%s\n" (Cm_rule.Rule.to_string r) kind)
      rules;
    0

let parse_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "parse" ~doc:"Parse and normalize a rule file")
    Term.(const parse_cmd_run $ file)

(* ---- suggest ---- *)

let kind_of_string = function
  | "write" -> Ok Interface.Write
  | "notify" -> Ok Interface.Notify
  | "conditional-notify" -> Ok Interface.Conditional_notify
  | "periodic-notify" -> Ok Interface.Periodic_notify
  | "read" -> Ok Interface.Read
  | "delete" -> Ok Interface.Delete
  | "no-spontaneous-write" -> Ok Interface.No_spontaneous_write
  | other -> Error ("unknown interface kind: " ^ other)

let parse_kinds s =
  List.fold_left
    (fun acc w ->
      match acc, kind_of_string (String.trim w) with
      | Ok ks, Ok k -> Ok (ks @ [ k ])
      | Error m, _ -> Error m
      | _, Error m -> Error m)
    (Ok [])
    (String.split_on_char ',' s)

let suggest_cmd_run source target source_if target_if =
  match parse_kinds source_if, parse_kinds target_if with
  | Error m, _ | _, Error m ->
    Printf.eprintf "%s\n" m;
    1
  | Ok src_kinds, Ok tgt_kinds ->
    let interfaces base =
      if base = source then src_kinds else if base = target then tgt_kinds else []
    in
    let constraint_def =
      Cm_core.Constraint_def.Copy
        {
          source = Interface.family source [ "n" ];
          target = Interface.family target [ "n" ];
        }
    in
    let candidates = Suggest.for_constraint ~interfaces constraint_def in
    if candidates = [] then begin
      Printf.printf
        "No applicable strategy: the given interfaces cannot support the constraint.\n";
      0
    end
    else begin
      Printf.printf "Constraint: %s\n\n"
        (Cm_core.Constraint_def.to_string constraint_def);
      List.iteri
        (fun i c -> Printf.printf "[%d] %s\n\n" (i + 1) (Suggest.describe c))
        candidates;
      0
    end

let suggest_cmd =
  let source =
    Arg.(value & opt string "Salary1" & info [ "source" ] ~docv:"BASE")
  in
  let target =
    Arg.(value & opt string "Salary2" & info [ "target" ] ~docv:"BASE")
  in
  let source_if =
    Arg.(
      value & opt string "notify,read"
      & info [ "source-interfaces" ] ~docv:"KINDS"
          ~doc:"Comma-separated interface kinds the source offers")
  in
  let target_if =
    Arg.(
      value & opt string "write,read"
      & info [ "target-interfaces" ] ~docv:"KINDS")
  in
  Cmd.v
    (Cmd.info "suggest"
       ~doc:"Suggest strategies and guarantees for a copy constraint")
    Term.(const suggest_cmd_run $ source $ target $ source_if $ target_if)

(* ---- derive ---- *)

let derive_cmd_run interfaces_file strategy_file source target =
  match
    ( Cm_rule.Parser.parse_rules (read_file interfaces_file),
      Cm_rule.Parser.parse_rules (read_file strategy_file) )
  with
  | exception Cm_rule.Parser.Parse_error { line; message; _ } ->
    Printf.eprintf "parse error on line %d: %s\n" line message;
    1
  | exception Sys_error m ->
    Printf.eprintf "%s\n" m;
    1
  | interfaces, strategy ->
    let report =
      Cm_core.Derive.copy_guarantees ~interfaces ~strategy
        ~source:(Interface.family source [ "n" ])
        ~target:(Interface.family target [ "n" ])
    in
    Printf.printf "Derivation for the copy constraint %s(n) = %s(n):\n\n%s\n" target
      source
      (Cm_core.Derive.report_to_string report);
    0

let derive_cmd =
  let interfaces_file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"INTERFACES")
  in
  let strategy_file =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"STRATEGY")
  in
  let source = Arg.(value & opt string "Salary1" & info [ "source" ] ~docv:"BASE") in
  let target = Arg.(value & opt string "Salary2" & info [ "target" ] ~docv:"BASE") in
  Cmd.v
    (Cmd.info "derive"
       ~doc:
         "Derive which copy-constraint guarantees follow from interface and \
          strategy rule files (the paper's proof rules, mechanized)")
    Term.(const derive_cmd_run $ interfaces_file $ strategy_file $ source $ target)

(* ---- config ---- *)

let config_cmd_run file =
  match Cm_core.Cmrid.parse_file file with
  | Error errors ->
    List.iter
      (fun (e : Cm_core.Cmrid.error) ->
        Printf.eprintf "%s:%d: %s\n" file e.Cm_core.Cmrid.e_line e.Cm_core.Cmrid.e_msg)
      errors;
    1
  | Ok config -> (
    match Cm_core.Toolkit.build config with
    | Error m ->
      Printf.eprintf "%s: %s\n" file m;
      1
    | Ok built ->
      Printf.printf "sites: %s\n\n" (String.concat ", " (Cm_core.Cmrid.sites config));
      Printf.printf "interfaces reported by the translators:\n";
      List.iter
        (fun (base, kinds) ->
          Printf.printf "  %-12s %s\n" base (String.concat ", " kinds))
        (Cm_core.Toolkit.interface_summary built);
      Printf.printf "\ninterface statements:\n";
      List.iter
        (fun r -> Printf.printf "  %s\n" (Cm_rule.Rule.to_string r))
        (Cm_core.System.interface_rules built.Cm_core.Toolkit.system);
      0)

let config_cmd =
  let file = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  Cmd.v
    (Cmd.info "config" ~doc:"Validate a CM-RID configuration file")
    Term.(const config_cmd_run $ file)

(* ---- check ---- *)

let check_cmd_run file rule_files json deny_warnings =
  match (read_file file, List.map (fun f -> (f, read_file f)) rule_files) with
  | exception Sys_error m ->
    Printf.eprintf "%s\n" m;
    1
  | text, rule_files ->
    let findings = Analysis.check_config ~rule_files ~file text in
    if json then print_endline (Analysis.to_json ~checked:file findings)
    else print_endline (Analysis.to_text findings);
    Analysis.exit_code ~deny_warnings findings

let check_cmd =
  let file = Cmtool_cli.config_pos in
  let rule_files =
    Cmtool_cli.rules_pos ~after:0
      ~doc:
        "Additional rule files; interface statements extend the declared \
         interfaces, the rest is strategy"
  in
  let json = Cmtool_cli.json_arg ~doc:"Emit findings as JSON" in
  let deny_warnings =
    Cmtool_cli.deny_warnings_arg
      ~doc:"Exit non-zero on warnings, not just errors"
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically analyze a CM-RID configuration plus optional rule files: \
          resolution, interface capabilities (§3.1.1), write/write and \
          trigger/write conflicts, rule-firing cycles (Appendix A), guarantee \
          feasibility via the Derive prover (§3.3.1), and hygiene.  Exits \
          non-zero on errors, and on warnings with --deny-warnings")
    Term.(const check_cmd_run $ file $ rule_files $ json $ deny_warnings)

(* ---- deps ---- *)

module Chase = Cm_chase.Chase

let deps_json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let deps_cmd_run config_file json =
  match Cmtool_cli.load_config config_file with
  | Error c -> c
  | Ok config ->
    let parsed =
      List.mapi
        (fun i (d : Cm_core.Cmrid.dependency_decl) ->
          (d, Chase.parse ~label:(Printf.sprintf "d%d" (i + 1)) d.Cm_core.Cmrid.d_text))
        config.Cm_core.Cmrid.dependencies
    in
    let bad =
      List.filter_map
        (fun ((d : Cm_core.Cmrid.dependency_decl), r) ->
          match r with
          | Error m -> Some (d.Cm_core.Cmrid.d_line, m)
          | Ok _ -> None)
        parsed
    in
    if bad <> [] then begin
      List.iter (fun (line, m) -> Printf.eprintf "%s:%d: %s\n" config_file line m) bad;
      1
    end
    else begin
      let deps =
        List.filter_map (fun ((d : Cm_core.Cmrid.dependency_decl), r) ->
            match r with Ok dep -> Some (d.Cm_core.Cmrid.d_line, dep) | Error _ -> None)
          parsed
      in
      let program = List.map snd deps in
      let edges = Chase.dependency_graph program in
      let cycles = Chase.special_cycles program in
      let interactions = Chase.interaction_cycles program in
      let compiled = Chase.to_rules program in
      if json then begin
        let buf = Buffer.create 1024 in
        Buffer.add_string buf
          (Printf.sprintf "{\"config\":\"%s\",\"dependencies\":[" (deps_json_escape config_file));
        List.iteri
          (fun i (line, (dep : Chase.dep)) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "{\"label\":\"%s\",\"kind\":\"%s\",\"line\":%d,\"text\":\"%s\"}"
                 (deps_json_escape dep.Chase.d_label) (Chase.kind_name dep) line
                 (deps_json_escape (Chase.to_string dep))))
          deps;
        Buffer.add_string buf "],\"edges\":[";
        List.iteri
          (fun i (e : Chase.edge) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "{\"src\":\"%s\",\"dst\":\"%s\",\"special\":%b,\"dep\":\"%s\"}"
                 (Chase.position_to_string e.Chase.e_src)
                 (Chase.position_to_string e.Chase.e_dst)
                 e.Chase.e_special (deps_json_escape e.Chase.e_dep)))
          edges;
        Buffer.add_string buf
          (Printf.sprintf "],\"weakly_acyclic\":%b,\"special_cycles\":[" (cycles = []));
        List.iteri
          (fun i (c : Chase.cycle) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "{\"positions\":[%s],\"labels\":[%s]}"
                 (String.concat ","
                    (List.map
                       (fun p -> "\"" ^ Chase.position_to_string p ^ "\"")
                       c.Chase.c_positions))
                 (String.concat ","
                    (List.map (fun l -> "\"" ^ deps_json_escape l ^ "\"") c.Chase.c_labels))))
          cycles;
        Buffer.add_string buf "],\"interaction_cycles\":[";
        List.iteri
          (fun i group ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "[%s]"
                 (String.concat ","
                    (List.map
                       (fun (d : Chase.dep) -> "\"" ^ deps_json_escape d.Chase.d_label ^ "\"")
                       group))))
          interactions;
        (match compiled with
        | Ok rules ->
          Buffer.add_string buf "],\"rules\":[";
          List.iteri
            (fun i r ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf
                ("\"" ^ deps_json_escape (Cm_rule.Rule.to_string r) ^ "\""))
            rules;
          Buffer.add_string buf "]}"
        | Error m ->
          Buffer.add_string buf
            (Printf.sprintf "],\"rules\":null,\"rules_error\":\"%s\"}" (deps_json_escape m)));
        print_endline (Buffer.contents buf)
      end
      else begin
        Printf.printf "# %d dependenc%s\n" (List.length deps)
          (if List.length deps = 1 then "y" else "ies");
        List.iter
          (fun (line, (dep : Chase.dep)) ->
            Printf.printf "%4d  %-4s %s\n" line (Chase.kind_name dep) (Chase.to_string dep))
          deps;
        let specials = List.length (List.filter (fun (e : Chase.edge) -> e.Chase.e_special) edges) in
        Printf.printf "\nposition graph: %d edge(s), %d existential\n" (List.length edges) specials;
        List.iter
          (fun (e : Chase.edge) ->
            Printf.printf "  %s %s %s  [%s]\n"
              (Chase.position_to_string e.Chase.e_src)
              (if e.Chase.e_special then "->*" else "-> ")
              (Chase.position_to_string e.Chase.e_dst)
              e.Chase.e_dep)
          edges;
        if cycles = [] then
          Printf.printf "weakly acyclic: yes — the chase terminates on every instance\n"
        else begin
          Printf.printf "weakly acyclic: NO\n";
          List.iter
            (fun (c : Chase.cycle) ->
              Printf.printf "  cycle through ⁎ edge: positions %s  [%s]\n"
                (String.concat ", " (List.map Chase.position_to_string c.Chase.c_positions))
                (String.concat ", " c.Chase.c_labels))
            cycles
        end;
        if interactions = [] then Printf.printf "interaction cycles: none\n"
        else
          List.iter
            (fun group ->
              Printf.printf "interaction cycle: %s\n"
                (String.concat ", "
                   (List.map (fun (d : Chase.dep) -> d.Chase.d_label) group)))
            interactions;
        (match compiled with
        | Ok rules ->
          Printf.printf "\ncompiled rules:\n";
          List.iter (fun r -> Printf.printf "  %s\n" (Cm_rule.Rule.to_string r)) rules
        | Error m -> Printf.printf "\ncompiled rules: none — %s\n" m)
      end;
      if cycles = [] then 0 else 1
    end

let deps_cmd =
  let file = Cmtool_cli.config_pos in
  let json = Cmtool_cli.json_arg ~doc:"Emit the dependency report as JSON" in
  Cmd.v
    (Cmd.info "deps"
       ~doc:
         "Analyze the [dependency] TGD/EGD constraints of a CM-RID \
          configuration: position graph with ordinary vs existential (⁎) \
          edges, weak-acyclicity verdict (chase termination), EGD/TGD \
          interaction cycles, and the CM rules the weakly-acyclic program \
          compiles to.  Exits non-zero when the program is not weakly \
          acyclic")
    Term.(const deps_cmd_run $ file $ json)

(* ---- evolve ---- *)

let parse_rule_file = Cmtool_cli.parse_rule_file

let evolve_cmd_run config_file proposed_file rule_files json deny_warnings
    dry_run =
  match Cmtool_cli.build_config config_file with
  | Error c -> c
  | Ok (config, built) -> (
    let system = built.Cm_core.Toolkit.system in
    match
      (Cmtool_cli.parse_rule_files rule_files, parse_rule_file proposed_file)
    with
    | Error c, _ | _, Error c -> c
    | Ok extra_rules, Ok proposed_rules ->
      let is_iface r = Interface.classify r <> None in
      (* Current epoch: interfaces synthesized from the configuration,
         extended by interface statements in the extra rule files —
         except statements restating a capability the translators
         already declared, which are the same interface, not a second
         channel (mirrors cmtool check's merge). *)
      let interfaces_before, strategy_before =
        Cmtool_cli.merge_program ~system extra_rules
      in
        (* Proposed epoch: its interface statements, when present,
           REPLACE the current set — an interface change (§4.2.3) means
           capabilities disappear, not accumulate.  A proposal with no
           interface statements changes only the strategy. *)
        let prop_ifaces, strategy_after =
          List.partition is_iface proposed_rules
        in
        let interfaces_after =
          if prop_ifaces = [] then interfaces_before else prop_ifaces
        in
        (* Preflight the proposed epoch exactly as `cmtool check` would
           check a running system's rules: capabilities against the
           proposed interfaces, conflicts, cycles. *)
        let findings =
          Analysis.check_rules ~file:proposed_file
            ~interfaces:interfaces_after ~strategy:strategy_after
            ~locator:(Cm_core.System.locator system) ()
        in
        let preflight_code = Analysis.exit_code ~deny_warnings findings in
        if preflight_code <> 0 then begin
          if json then
            print_endline (Analysis.to_json ~checked:proposed_file findings)
          else begin
            print_endline (Analysis.to_text findings);
            Printf.printf
              "proposed epoch rejected by preflight; not comparing guarantees\n"
          end;
          preflight_code
        end
        else begin
          let constraints =
            List.map
              (fun (c : Cm_core.Cmrid.constraint_decl) ->
                (c.Cm_core.Cmrid.c_source, c.Cm_core.Cmrid.c_target))
              config.Cm_core.Cmrid.constraints
          in
          let survivals =
            Cm_core.Evolution.compare_programs ~interfaces_before
              ~interfaces_after ~strategy_before ~strategy_after ~constraints
          in
          if json then
            print_endline (Cm_core.Evolution.survivals_to_json survivals)
          else begin
            Printf.printf "proposed epoch %s: %d interface statement(s), %d strategy rule(s)\n"
              proposed_file (List.length prop_ifaces)
              (List.length strategy_after);
            Printf.printf "preflight: %s\n\n"
              (match Analysis.summary findings with
              | 0, 0, 0 -> "no findings"
              | e, w, i -> Printf.sprintf "%d error(s), %d warning(s), %d info(s)" e w i);
            if constraints = [] then
              Printf.printf "no copy constraints declared; nothing to compare\n"
            else print_string (Cm_core.Evolution.survivals_to_text survivals)
          end;
          if dry_run then 0
          else begin
            (* Live rollout on a freshly built instance of the
               configuration: cut over mid-run, let the old epoch drain,
               retire it once the transport is quiescent. *)
            let sim = Cm_core.System.sim system in
            let evo =
              Cm_core.Evolution.create ~constraints
                ~required:(Cm_core.Cmrid.required_constraints config)
                ~interfaces:interfaces_before system
            in
            let strategy =
              { Cm_core.Strategy.strategy_name = "proposed";
                description = "proposed epoch from " ^ proposed_file;
                rules = strategy_after;
                aux_init = [] }
            in
            let cutover_at = 10.0 in
            Cm_sim.Sim.schedule_at sim cutover_at (fun () ->
                match Cm_core.Evolution.evolve ~quiesce:true evo strategy with
                | Ok _ -> ()
                | Error m -> failwith ("evolve: " ^ m));
            Cm_core.System.run system ~until:60.0;
            if not json then begin
              Printf.printf "\nlive rollout (simulated):\n";
              List.iter
                (fun (tr : Cm_core.Evolution.transition) ->
                  Printf.printf "  t=%.2f  cutover epoch %d -> %d (%s)\n"
                    tr.Cm_core.Evolution.tr_at tr.Cm_core.Evolution.tr_from
                    tr.Cm_core.Evolution.tr_to
                    tr.Cm_core.Evolution.tr_strategy)
                (Cm_core.Evolution.transitions evo);
              Printf.printf
                "  current epoch %d; retirements %d; draining [%s]; \
                 stale-epoch rejections %d\n"
                (Cm_core.Evolution.current_epoch evo)
                (Cm_core.Evolution.retirements evo)
                (String.concat ", "
                   (List.map string_of_int (Cm_core.Evolution.draining evo)))
                (Cm_core.Evolution.stale_rejections evo);
              List.iter
                (fun (rb : Cm_core.Evolution.rollback) ->
                  Printf.printf
                    "  t=%.2f  ROLLED BACK epoch %d -> %d (via %d): required \
                     guarantee(s) lost: %s\n"
                    rb.Cm_core.Evolution.rb_at rb.Cm_core.Evolution.rb_from
                    rb.Cm_core.Evolution.rb_to rb.Cm_core.Evolution.rb_via
                    (String.concat ", "
                       (List.map
                          (fun (s, tg, g) -> Printf.sprintf "%s->%s %s" s tg g)
                          rb.Cm_core.Evolution.rb_lost)))
                (Cm_core.Evolution.rollbacks evo)
            end;
            0
          end
        end)

let evolve_cmd =
  let config_file = Cmtool_cli.config_pos in
  let proposed_file =
    Arg.(
      required & pos 1 (some file) None
      & info [] ~docv:"PROPOSED"
          ~doc:"Rule file for the proposed epoch; its interface statements \
                (if any) replace the current interfaces, the rest is the \
                new strategy")
  in
  let rule_files =
    Cmtool_cli.rules_pos ~after:1
      ~doc:
        "Rule files describing the currently installed epoch, as in \
         $(b,cmtool check)"
  in
  let json = Cmtool_cli.json_arg ~doc:"Emit the survival report as JSON" in
  let deny_warnings =
    Cmtool_cli.deny_warnings_arg
      ~doc:"Fail the preflight on warnings, not just errors"
  in
  let dry_run =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:"Static analysis only: preflight + guarantee-survival \
                comparison, no simulated rollout")
  in
  Cmd.v
    (Cmd.info "evolve"
       ~doc:
         "Propose a new rule epoch for a CM-RID configuration: preflight it \
          through the static checker, report which \194\1673.3 guarantees of each \
          declared copy constraint are kept, upgraded, or lost across the \
          cutover, and (without --dry-run) perform the drain-and-cutover on \
          a simulated instance of the configuration")
    Term.(
      const evolve_cmd_run $ config_file $ proposed_file $ rule_files $ json
      $ deny_warnings $ dry_run)

(* ---- check-trace ---- *)

let item_of_string s =
  match Cm_rule.Parser.parse_expr s with
  | Cm_rule.Expr.Item (base, args) ->
    let params =
      List.filter_map
        (function Cm_rule.Expr.Const v -> Some v | _ -> None)
        args
    in
    if List.length params = List.length args then
      Ok (Cm_rule.Item.make base ~params)
    else Error (s ^ " is not a concrete item")
  | _ -> Error (s ^ " is not an item")
  | exception Cm_rule.Parser.Parse_error { message; _ } -> Error message

let check_trace_cmd_run trace_file rules_file source target kappa =
  match Cm_rule.Trace_io.read_file trace_file with
  | Error m ->
    Printf.eprintf "%s: %s\n" trace_file m;
    1
  | Ok trace -> (
    match Cm_rule.Parser.parse_rules (read_file rules_file) with
    | exception Cm_rule.Parser.Parse_error { line; message; _ } ->
      Printf.eprintf "%s:%d: parse error: %s\n" rules_file line message;
      1
    | rules ->
      (* Without a configured locator, site restrictions cannot apply;
         every rule is checked wherever its LHS matches. *)
      let locator _ = "?" in
      let violations = Cm_rule.Validity.check ~rules ~locator trace in
      Printf.printf "%d event(s), %d rule(s): %d validity violation(s)\n"
        (Cm_rule.Trace.length trace) (List.length rules) (List.length violations);
      List.iter
        (fun v -> Printf.printf "  %s\n" (Cm_rule.Validity.violation_to_string v))
        violations;
      (match source, target with
       | Some source, Some target -> (
         match item_of_string source, item_of_string target with
         | Ok leader, Ok follower ->
           let tl = Cm_rule.Timeline.of_trace trace in
           let horizon = Cm_rule.Trace.last_time trace in
           List.iter
             (fun g ->
               let r = Cm_core.Guarantee.check ~horizon tl g in
               Printf.printf "  %-22s %s\n" (Cm_core.Guarantee.name g)
                 (if r.Cm_core.Guarantee.holds then "holds"
                  else
                    "VIOLATED: "
                    ^ String.concat "; " r.Cm_core.Guarantee.counterexamples))
             (Cm_core.Guarantee.for_copy_constraint ~source:leader ~target:follower
                ~kappa)
         | Error m, _ | _, Error m ->
           Printf.eprintf "%s\n" m)
       | _ -> ());
      if violations = [] then 0 else 1)

let check_trace_cmd =
  let trace_file = Arg.(required & pos 0 (some file) None & info [] ~docv:"TRACE") in
  let rules_file = Arg.(required & pos 1 (some file) None & info [] ~docv:"RULES") in
  let source =
    Arg.(value & opt (some string) None
         & info [ "check-copy-source" ] ~docv:"ITEM"
             ~doc:"Also check the copy guarantees with this concrete source item")
  in
  let target =
    Arg.(value & opt (some string) None & info [ "check-copy-target" ] ~docv:"ITEM")
  in
  let kappa = Arg.(value & opt float 10.0 & info [ "kappa" ] ~docv:"SECONDS") in
  Cmd.v
    (Cmd.info "check-trace"
       ~doc:"Re-check a dumped execution trace offline: Appendix-A validity \
             against a rule file, and optionally the copy guarantees")
    Term.(const check_trace_cmd_run $ trace_file $ rules_file $ source $ target $ kappa)

(* ---- demo ---- *)

let run_demo seed minutes dump_trace =
  let module Payroll = Cm_workload.Payroll in
  let module Sys_ = Cm_core.System in
  let module Guarantee = Cm_core.Guarantee in
  let p = Payroll.create ~config:(Cm_core.System.Config.seeded seed) ~employees:5 () in
  Payroll.install_propagation p;
  let horizon = float_of_int minutes *. 60.0 in
  Payroll.random_updates p ~mean_interarrival:45.0 ~until:(horizon -. 60.0);
  Sys_.run p.Payroll.system ~until:horizon;
  Printf.printf "ran %d simulated minute(s); %d events recorded\n" minutes
    (Cm_rule.Trace.length (Sys_.trace p.Payroll.system));
  let tl = Sys_.timeline ~initial:p.Payroll.initial p.Payroll.system in
  List.iter
    (fun g ->
      let r = Guarantee.check ~horizon ~ignore_after:(horizon -. 60.0) tl g in
      Printf.printf "  %-22s %s\n" (Guarantee.name g)
        (if r.Guarantee.holds then "holds" else "VIOLATED"))
    (Payroll.guarantees p ~emp:"e1");
  let violations = Sys_.check_validity p.Payroll.system in
  Printf.printf "  %-22s %d violation(s)\n" "appendix-A validity" (List.length violations);
  (match dump_trace with
   | Some path ->
     Cm_rule.Trace_io.write_file path (Sys_.trace p.Payroll.system);
     let rules_path = path ^ ".rules" in
     Out_channel.with_open_text rules_path (fun oc ->
         List.iter
           (fun r -> output_string oc (Cm_rule.Rule.to_string r ^ "\n"))
           (Sys_.all_rules p.Payroll.system));
     Printf.printf
       "trace written to %s, rules to %s\n\
        recheck with: cmtool check-trace %s %s\n"
       path rules_path path rules_path
   | None -> ());
  0

let demo_cmd_run seed minutes dump_trace no_check =
  if not (preflight ~label:"payroll" ~no_check Cm_chaos.Chaos.Payroll) then 1
  else run_demo seed minutes dump_trace

let demo_cmd =
  let seed = Cmtool_cli.seed_arg () in
  let minutes = Arg.(value & opt int 20 & info [ "minutes" ] ~docv:"N") in
  let dump_trace =
    Arg.(value & opt (some string) None & info [ "dump-trace" ] ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Run the payroll scenario and check its guarantees")
    Term.(const demo_cmd_run $ seed $ minutes $ dump_trace $ no_check_arg)

(* ---- faults ---- *)

let run_faults seed drop dup minutes employees no_reliable heartbeat =
  let module Payroll = Cm_workload.Payroll in
  let module Sys_ = Cm_core.System in
  let module Net = Cm_net.Net in
  let module Reliable = Cm_core.Reliable in
  let module Guarantee = Cm_core.Guarantee in
  let horizon = float_of_int minutes *. 60.0 in
  (* Stop injecting updates well before the horizon so retransmission
     chains can drain and the final states are comparable. *)
  let updates_until = Float.max 60.0 (horizon -. 120.0) in
  let run config =
    let p = Payroll.create ~config ~employees () in
    Payroll.install_propagation p;
    Payroll.random_updates p ~mean_interarrival:30.0 ~until:updates_until;
    Sys_.run p.Payroll.system ~until:horizon;
    p
  in
  let finals p =
    List.map
      (fun emp ->
        (emp, Payroll.salary_at p `A emp, Payroll.salary_at p `B emp))
      p.Payroll.employees
  in
  let clean = run (Sys_.Config.seeded seed) in
  let faulty_config =
    let c =
      Sys_.Config.(
        seeded seed |> with_faults { Net.drop_prob = drop; dup_prob = dup })
    in
    if no_reliable then c
    else
      Sys_.Config.with_reliable
        { Reliable.default_config with heartbeat_period = heartbeat }
        c
  in
  let faulty = run faulty_config in
  Printf.printf
    "payroll scenario, seed %d, %d employee(s), %d simulated minute(s)\n\
     every link: drop %.2f, duplicate %.2f; reliable layer: %s\n\n"
    seed employees minutes drop dup
    (if no_reliable then "OFF (ablation)" else "on");
  let net = Sys_.net faulty.Payroll.system in
  Printf.printf "network (faulty run):\n";
  Printf.printf "  raw messages sent     %6d\n" (Net.messages_sent net);
  Printf.printf "  lost to faults        %6d\n" (Net.drops_by net Net.Faulty);
  Printf.printf "  duplicated in flight  %6d\n" (Net.messages_duplicated net);
  Printf.printf "  endpoint down (send)  %6d\n" (Net.endpoint_down_at_send net);
  Printf.printf "  endpoint down (flight)%6d\n" (Net.endpoint_down_in_flight net);
  (match Sys_.reliable faulty.Payroll.system with
   | None -> Printf.printf "\nreliable layer disabled: no retransmission.\n"
   | Some r ->
     let s = Reliable.stats r in
     Printf.printf "\nreliable delivery (faulty run):\n";
     Printf.printf "  data envelopes        %6d\n" s.Reliable.data_sent;
     Printf.printf "  retransmissions       %6d\n" s.Reliable.retransmits;
     Printf.printf "  acks sent             %6d\n" s.Reliable.acks_sent;
     Printf.printf "  delivered exactly-once%6d\n" s.Reliable.delivered;
     Printf.printf "  duplicates suppressed %6d\n" s.Reliable.dup_suppressed;
     Printf.printf "  reorderings repaired  %6d\n" s.Reliable.reordered;
     Printf.printf "  envelopes abandoned   %6d\n" s.Reliable.give_ups);
  Printf.printf "\nfinal salaries (clean A | clean B | faulty A | faulty B):\n";
  List.iter2
    (fun (emp, ca, cb) (_, fa, fb) ->
      Printf.printf "  %-4s %8s %8s %8s %8s%s\n" emp
        (Cm_rule.Value.to_string ca) (Cm_rule.Value.to_string cb)
        (Cm_rule.Value.to_string fa) (Cm_rule.Value.to_string fb)
        (if (ca, cb) = (fa, fb) then "" else "   <-- DIVERGED"))
    (finals clean) (finals faulty);
  let g1 =
    Sys_.check_guarantee ~initial:faulty.Payroll.initial faulty.Payroll.system
      (Guarantee.Follows
         {
           Guarantee.leader = Payroll.source_item "e1";
           follower = Payroll.target_item "e1";
         })
  in
  let checks =
    [
      ("final state identical to zero-fault run", finals clean = finals faulty);
      ( "no envelope lost or abandoned",
        match Sys_.reliable faulty.Payroll.system with
        | None -> false
        | Some r ->
          let s = Reliable.stats r in
          s.Reliable.give_ups = 0 && s.Reliable.delivered = s.Reliable.data_sent );
      ( "faults actually exercised",
        drop = 0.0
        || Net.drops_by net Net.Faulty > 0
           &&
           match Sys_.reliable faulty.Payroll.system with
           | None -> true
           | Some r -> (Reliable.stats r).Reliable.retransmits > 0 );
      ("guarantee (1) follows holds", g1.Guarantee.holds);
    ]
  in
  Printf.printf "\nchecks:\n";
  List.iter
    (fun (name, ok) ->
      Printf.printf "  [%s] %s\n" (if ok then "ok" else "FAILED") name)
    checks;
  if List.for_all snd checks then 0 else 1

let faults_cmd_run seed drop dup minutes employees no_reliable heartbeat no_check =
  if not (preflight ~label:"payroll" ~no_check Cm_chaos.Chaos.Payroll) then 1
  else run_faults seed drop dup minutes employees no_reliable heartbeat

let faults_cmd =
  let seed = Cmtool_cli.seed_arg () in
  let drop =
    Arg.(value & opt float 0.2
         & info [ "drop" ] ~docv:"P" ~doc:"Per-message loss probability on every link")
  in
  let dup =
    Arg.(value & opt float 0.2
         & info [ "dup" ] ~docv:"P"
             ~doc:"Per-message duplication probability on every link")
  in
  let minutes = Arg.(value & opt int 20 & info [ "minutes" ] ~docv:"N") in
  let employees = Arg.(value & opt int 5 & info [ "employees" ] ~docv:"N") in
  let no_reliable =
    Arg.(value & flag
         & info [ "no-reliable" ]
             ~doc:"Ablation: run the faulty network without the reliable-delivery \
                   layer (expected to fail the checks)")
  in
  let heartbeat =
    Arg.(value & opt float 0.0
         & info [ "heartbeat" ] ~docv:"SECONDS"
             ~doc:"Heartbeat period for the failure detector (0 disables)")
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:"Run the payroll scenario twice at the same seed — once on a clean \
             network, once with loss and duplication on every link plus the \
             reliable-delivery layer — and verify the final states are identical")
    Term.(const faults_cmd_run $ seed $ drop $ dup $ minutes $ employees
          $ no_reliable $ heartbeat $ no_check_arg)

(* ---- chaos ---- *)

let chaos_cmd_run seed events crashes crash_min crash_max workload durability
    churn heal shards sites no_check =
  let module Chaos = Cm_chaos.Chaos in
  let chaos_workload =
    match Chaos.workload_of_string workload with
    | Some w -> w
    | None ->
      Printf.eprintf "unknown workload %S (payroll|bank)\n" workload;
      exit 2
  in
  if churn > 0 && chaos_workload <> Chaos.Payroll then begin
    Printf.eprintf "--churn is only defined for the payroll workload\n";
    exit 2
  end;
  if heal && chaos_workload <> Chaos.Payroll then begin
    Printf.eprintf "--heal is only defined for the payroll workload\n";
    exit 2
  end;
  let durability =
    match Cm_core.Journal.durability_of_string durability with
    | Some d -> d
    | None ->
      Printf.eprintf
        "unknown durability %S (none|journal|journal+checkpoint)\n" durability;
      exit 2
  in
  if shards > 0 then begin
    if heal || churn > 0 then begin
      Printf.eprintf "--shards cannot be combined with --heal or --churn\n";
      exit 2
    end;
    let spec =
      {
        Chaos.ss_seed = seed;
        ss_sites = sites;
        ss_shards = shards;
        ss_events = events;
        ss_crashes = crashes;
        ss_durability = durability;
      }
    in
    let report = Chaos.run_sharded spec in
    print_string (Chaos.shard_report_to_string report);
    if Chaos.shard_passed report then 0 else 1
  end
  else if not (preflight ~label:workload ~no_check chaos_workload) then 1
  else begin
    let spec =
      {
        Chaos.seed;
        events;
        crashes;
        crash_min_len = crash_min;
        crash_max_len = crash_max;
        durability;
        chaos_workload;
        churn;
      }
    in
    if heal then begin
      let report = Chaos.run_heal spec in
      print_string (Chaos.heal_report_to_string report);
      if Chaos.heal_passed report then 0 else 1
    end
    else begin
      let report = Chaos.run spec in
      print_string (Chaos.report_to_string report);
      if Chaos.passed report then 0 else 1
    end
  end

let chaos_cmd =
  let seed = Cmtool_cli.seed_arg () in
  let events =
    Arg.(value & opt int 200
         & info [ "events" ] ~docv:"N" ~doc:"Workload operations to inject")
  in
  let crashes =
    Arg.(value & opt int 5
         & info [ "crashes" ] ~docv:"N" ~doc:"Crash/restart cycles across the run")
  in
  let crash_min =
    Arg.(value & opt float 10.0
         & info [ "crash-min" ] ~docv:"SECONDS" ~doc:"Shortest crash window")
  in
  let crash_max =
    Arg.(value & opt float 60.0
         & info [ "crash-max" ] ~docv:"SECONDS"
             ~doc:"Longest crash window; above ~75s even the reliable layer's \
                   retransmission chain gives up and only a journal saves the \
                   messages")
  in
  let workload =
    Arg.(value & opt string "payroll"
         & info [ "workload" ] ~docv:"NAME" ~doc:"payroll or bank")
  in
  let durability =
    Arg.(value & opt string "journal+checkpoint"
         & info [ "durability" ] ~docv:"MODE"
             ~doc:"none, journal, or journal+checkpoint")
  in
  let churn =
    Arg.(value & opt int 0
         & info [ "churn" ] ~docv:"N"
             ~doc:"Live rule-program replacements (Evolution cutovers) to \
                   interleave with the faults — payroll only.  Each cutover \
                   swaps the propagation strategy for a different variant and \
                   the harness additionally checks that every epoch drains and \
                   retires cleanly and that guarantees proved under all epochs \
                   hold on the observed timeline")
  in
  let heal =
    Arg.(value & flag
         & info [ "heal" ]
             ~doc:"Run the self-healing schedule instead: silent-drop windows \
                   on the notify channel plus one bad rule rollout, under \
                   streaming guarantee monitors.  Checks that staleness is \
                   detected within kappa + one tick, no read is served from a \
                   stale copy, the bad cutover auto-rolls back (journaled), \
                   and every quarantined copy probes back to service — \
                   payroll only")
  in
  let shards =
    Arg.(value & opt int 0
         & info [ "shards" ] ~docv:"N"
             ~doc:"Run the sharded chaos schedule instead: a cross-shard \
                   notification ring over N OCaml domains with crashes on \
                   one shard while others keep firing.  The report is \
                   byte-identical across repeated runs and across shard \
                   counts for one seed (it omits N on purpose); 0 (the \
                   default) keeps the classic single-system workloads")
  in
  let sites =
    Arg.(value & opt int 6
         & info [ "sites" ] ~docv:"N"
             ~doc:"Ring size for --shards runs (at least 4; ignored \
                   otherwise)")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Derive a randomized crash/loss/partition schedule from the seed, \
             run the workload under it and fault-free, and check that recovery \
             turned every crash into a metric failure with nothing lost or \
             duplicated.  Output is byte-identical for identical arguments; \
             exits non-zero if any invariant fails")
    Term.(const chaos_cmd_run $ seed $ events $ crashes $ crash_min $ crash_max
          $ workload $ durability $ churn $ heal $ shards $ sites
          $ no_check_arg)

(* ---- stats / spans ---- *)

(* Shared runner for the observability exports: the E13 message-cost
   scenario (payroll over a faulty network with the reliable layer),
   instrumented with a registry.  Determinism contract: at a fixed seed
   the exported JSON is byte-identical across runs — CI compares two
   invocations, and the counters reconcile with EXPERIMENTS.md E13. *)
let observed_payroll ~seed ~employees ~drop ~dup =
  let module Payroll = Cm_workload.Payroll in
  let module Sys_ = Cm_core.System in
  let module Net = Cm_net.Net in
  let module Reliable = Cm_core.Reliable in
  let obs = Cm_core.Obs.create () in
  let config =
    Sys_.Config.(
      seeded seed
      |> with_faults { Net.drop_prob = drop; dup_prob = dup }
      |> with_reliable Reliable.default_config
      |> with_obs obs)
  in
  let p = Payroll.create ~config ~employees () in
  Payroll.install_propagation p;
  Payroll.random_updates p ~mean_interarrival:20.0 ~until:500.0;
  Sys_.run p.Payroll.system ~until:700.0;
  obs

let stats_cmd_run seed employees drop dup csv out =
  let obs = observed_payroll ~seed ~employees ~drop ~dup in
  Cmtool_cli.emit ~out
    (if csv then Cm_core.Obs.snapshot_to_csv obs
     else Cm_core.Obs.snapshot_to_json obs)

let spans_cmd_run seed employees drop dup csv out =
  let obs = observed_payroll ~seed ~employees ~drop ~dup in
  Cmtool_cli.emit ~out
    (if csv then Cm_core.Obs.spans_to_csv obs
     else Cm_core.Obs.spans_to_json obs)

let obs_args =
  let seed =
    Cmtool_cli.seed_arg ~default:1300
      ~doc:"Simulation seed (default matches bench experiment E13)" ()
  in
  let employees = Arg.(value & opt int 3 & info [ "employees" ] ~docv:"N") in
  let drop =
    Arg.(value & opt float 0.1
         & info [ "drop" ] ~docv:"P" ~doc:"Per-message loss probability")
  in
  let dup =
    Arg.(value & opt float 0.1
         & info [ "dup" ] ~docv:"P" ~doc:"Per-message duplication probability")
  in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of JSON")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout")
  in
  (seed, employees, drop, dup, csv, out)

let stats_cmd =
  let seed, employees, drop, dup, csv, out = obs_args in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run the E13 payroll scenario with the observability registry on \
             and export the metric snapshot (counters, gauges, latency \
             series).  Deterministic: same seed, byte-identical output")
    Term.(const stats_cmd_run $ seed $ employees $ drop $ dup $ csv $ out)

let spans_cmd =
  let seed, employees, drop, dup, csv, out = obs_args in
  Cmd.v
    (Cmd.info "spans"
       ~doc:"Run the E13 payroll scenario and export the rule-firing spans \
             (fire -> retransmit* -> execute -> step*), parent/child ids \
             included")
    Term.(const spans_cmd_run $ seed $ employees $ drop $ dup $ csv $ out)

(* ---- route ---- *)

let route_cmd_run config_file rule_files slo json no_check =
  if not (Cmtool_cli.preflight_config ~no_check ~file:config_file rule_files)
  then 1
  else
    match Cmtool_cli.build_config config_file with
    | Error c -> c
    | Ok (config, built) -> (
      match Cmtool_cli.parse_rule_files rule_files with
      | Error c -> c
      | Ok extra_rules ->
        let system = built.Cm_core.Toolkit.system in
        let interfaces, strategy = Cmtool_cli.merge_program ~system extra_rules in
        let route = Cm_route.Route.of_cmrid ~interfaces ~strategy system config in
        (* Static routing table: every declared site acts as a client
           location, sorted so the output is byte-deterministic. *)
        let client_sites =
          List.sort String.compare (Cm_core.Cmrid.sites config)
        in
        let decisions =
          Cm_route.Route.plan ?within_kappa:slo route ~client_sites
        in
        print_string
          (if json then Cm_route.Route.report_to_json ?slo route decisions
           else Cm_route.Route.report_to_text ?slo route decisions);
        0)

let route_cmd =
  let config_file = Cmtool_cli.config_pos in
  let rule_files =
    Cmtool_cli.rules_pos ~after:0
      ~doc:
        "Rule files describing the running program, as in $(b,cmtool check); \
         the Derive prover sees them when computing each copy's \xce\xba"
  in
  let slo =
    Arg.(
      value & opt (some float) None
      & info [ "slo" ] ~docv:"KAPPA"
          ~doc:
            "Per-read staleness budget in seconds: a copy qualifies when its \
             derived \xce\xba is at most this (inclusive).  Without it any \
             proved \xce\xba qualifies")
  in
  let json = Cmtool_cli.json_arg ~doc:"Emit the catalog and routes as JSON" in
  Cmd.v
    (Cmd.info "route"
       ~doc:
         "Constraint-aware read routing over a CM-RID configuration: derive \
          the replica catalog from its $(b,constraint copy) directives \
          (\xc2\xa73.3.1 guarantees via the Derive prover) and print where each \
          site's reads would be served under the given staleness SLO — \
          cheapest qualifying replica, master fallback, or forced \
          synchronous poll.  Output is byte-deterministic")
    Term.(
      const route_cmd_run $ config_file $ rule_files $ slo $ json
      $ Cmtool_cli.no_check_arg)

let () =
  let info =
    Cmd.info "cmtool" ~version:"1.0"
      ~doc:"Constraint management toolkit for heterogeneous information systems"
  in
  exit (Cmd.eval' (Cmd.group info
       [ parse_cmd; suggest_cmd; derive_cmd; config_cmd; check_cmd; deps_cmd;
         evolve_cmd; check_trace_cmd; demo_cmd; faults_cmd; chaos_cmd;
         stats_cmd; spans_cmd; route_cmd ]))
