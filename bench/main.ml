(* Experiment harness: regenerates every reproduced result of the paper.

   The ICDE'96 paper has no quantitative tables — its "results" are the
   architecture and the qualitative claims about which guarantees hold
   under which interface/strategy combinations (§4.2.3, §5, §6).  Each
   experiment E1–E10 below is the executable form of one such claim (see
   DESIGN.md §6 and EXPERIMENTS.md); the harness prints one table per
   experiment.  A Bechamel micro-benchmark section measures the toolkit
   itself.

   Usage:  dune exec bench/main.exe                 (all experiments + micro)
           dune exec bench/main.exe -- --exp e4     (one experiment)
           dune exec bench/main.exe -- --no-micro   (skip Bechamel)
           dune exec bench/main.exe -- --smoke      (reduced E15/E17 sweeps) *)

open Cm_rule
module Sim = Cm_sim.Sim
module Net = Cm_net.Net
module Sys_ = Cm_core.System
module Shell = Cm_core.Shell
module Guarantee = Cm_core.Guarantee
module Strategy = Cm_core.Strategy
module Interface = Cm_core.Interface
module Tr_rel = Cm_core.Tr_relational
module Db = Cm_relational.Database
module Health = Cm_sources.Health
module Payroll = Cm_workload.Payroll
module Bank = Cm_workload.Bank
module Banking_day = Cm_workload.Banking_day
module Stanford = Cm_workload.Stanford
module Table = Cm_util.Table
module Stats = Cm_util.Stats
module Obs = Cm_core.Obs
module Fabric = Cm_shard.Shard.Fabric

let yes_no b = Table.cell_bool b

(* Registry snapshots collected while experiments run; written out as one
   JSON array by --json FILE (CI uploads it as an artifact). *)
let json_snapshots : (string * string) list ref = ref []

let record_snapshot label obs =
  json_snapshots := !json_snapshots @ [ (label, Obs.snapshot_to_json obs) ]

let write_snapshots path =
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i (label, json) ->
      if i > 0 then output_string oc ",\n";
      Printf.fprintf oc "{\"experiment\":\"%s\",\"snapshot\":%s}" label
        (String.trim json))
    !json_snapshots;
  output_string oc "\n]\n";
  close_out oc

let check ?ignore_after ~horizon tl g = Guarantee.check ?ignore_after ~horizon tl g

(* ------------------------------------------------------------------ *)
(* E1: propagation validates guarantees (1)-(4)  (§4.2.3, first part) *)
(* ------------------------------------------------------------------ *)

let exp_e1 () =
  let p = Payroll.create ~config:(Cm_core.System.Config.seeded 101) ~employees:20 () in
  Payroll.install_propagation p;
  Payroll.random_updates p ~mean_interarrival:10.0 ~until:3000.0;
  Sys_.run p.Payroll.system ~until:3600.0;
  let tl = Sys_.timeline ~initial:p.Payroll.initial p.Payroll.system in
  let table =
    Table.create
      ~title:
        "E1: notify+write propagation, 20 employees, Poisson updates (paper: all hold)"
      ~columns:[ "guarantee"; "paper"; "measured"; "obligations" ]
  in
  let all_hold g =
    List.fold_left
      (fun (ok, points) emp ->
        let r =
          check ~horizon:3600.0 ~ignore_after:3000.0 tl
            (List.nth (Payroll.guarantees p ~emp) g)
        in
        (ok && r.Guarantee.holds, points + r.Guarantee.checked_points))
      (true, 0) p.Payroll.employees
  in
  List.iteri
    (fun i name ->
      let ok, points = all_hold i in
      Table.add_row table [ name; "holds"; yes_no ok; string_of_int points ])
    [ "(1) follows"; "(2) leads"; "(3) strictly-follows"; "(4) metric-follows" ];
  let violations = Sys_.check_validity p.Payroll.system in
  Table.add_row table
    [ "appendix-A validity"; "0 violations";
      string_of_int (List.length violations) ^ " violations"; "-" ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* E2: polling misses updates  (§4.2.3, second part)                   *)
(* ------------------------------------------------------------------ *)

let exp_e2 () =
  let table =
    Table.create
      ~title:
        "E2: polling strategy — guarantee (2) fails; miss rate grows with \
         update rate x poll period (paper: (2) invalid under polling)"
      ~columns:
        [ "poll period (s)"; "update interval (s)"; "(1)"; "(2)"; "(3)"; "miss rate" ]
  in
  List.iter
    (fun period ->
      List.iter
        (fun interarrival ->
          let p =
            Payroll.create
              ~config:
                (Sys_.Config.seeded
                   (200 + int_of_float (period +. interarrival)))
              ~employees:1 ~mode:Payroll.Read_only ()
          in
          Payroll.install_polling ~period p;
          Payroll.random_updates p ~mean_interarrival:interarrival ~until:3000.0;
          Sys_.run p.Payroll.system ~until:3600.0;
          let tl = Sys_.timeline ~initial:p.Payroll.initial p.Payroll.system in
          let src = Payroll.source_item "e1" and tgt = Payroll.target_item "e1" in
          let pair = { Guarantee.leader = src; follower = tgt } in
          let g1 = check ~horizon:3600.0 tl (Guarantee.Follows pair) in
          let g2 =
            check ~horizon:3600.0 ~ignore_after:3000.0 tl (Guarantee.Leads pair)
          in
          let g3 = check ~horizon:3600.0 tl (Guarantee.Strictly_follows pair) in
          (* Miss rate: fraction of source values (before the drain) never
             reflected at the target. *)
          let source_values =
            List.filter (fun (t, _) -> t <= 3000.0) (Timeline.values_taken tl src)
          in
          let target_values = Timeline.values_taken tl tgt in
          let missed =
            List.filter
              (fun (t1, v) ->
                not
                  (List.exists
                     (fun (t2, v') -> t2 > t1 && Value.equal v v')
                     target_values))
              source_values
          in
          let rate =
            if source_values = [] then 0.0
            else float_of_int (List.length missed) /. float_of_int (List.length source_values)
          in
          Table.add_row table
            [
              Table.cell_f ~digits:0 period;
              Table.cell_f ~digits:0 interarrival;
              yes_no g1.Guarantee.holds;
              yes_no g2.Guarantee.holds;
              yes_no g3.Guarantee.holds;
              Table.cell_pct rate;
            ])
        [ 10.0; 60.0 ])
    [ 30.0; 120.0; 300.0 ];
  Table.print table;
  print_endline
    "Shape check: (1) and (3) always hold; (2) fails whenever several updates\n\
     land in one polling interval, and the miss rate rises with period/rate.\n"

(* ------------------------------------------------------------------ *)
(* E3: metric bound kappa follows from the interface deltas (§3.3.1)   *)
(* ------------------------------------------------------------------ *)

let exp_e3 () =
  let table =
    Table.create
      ~title:
        "E3: observed staleness vs derived kappa (kappa = notify + rule + write \
         bounds; paper: metric guarantee (4) holds for appropriate kappa)"
      ~columns:
        [ "notify lat (s)"; "net lat (s)"; "kappa bound"; "max staleness"; "(4) holds" ]
  in
  List.iter
    (fun notify_latency ->
      List.iter
        (fun net_base ->
          let p =
            Payroll.create
              ~config:
                Sys_.Config.(
                  seeded (300 + int_of_float (notify_latency *. 10.0))
                  |> with_latency
                       { Net.base = net_base; jitter = net_base /. 5.0 })
              ~employees:3 ~notify_latency ~notify_delta:(notify_latency *. 2.0)
              ()
          in
          Payroll.install_propagation ~delta:(5.0 +. (2.0 *. net_base)) p;
          Payroll.random_updates p ~mean_interarrival:30.0 ~until:2000.0;
          Sys_.run p.Payroll.system ~until:2500.0;
          let tl = Sys_.timeline ~initial:p.Payroll.initial p.Payroll.system in
          (* kappa: notify delta + rule delta + write delta (translator). *)
          let kappa = (notify_latency *. 2.0) +. 5.0 +. (2.0 *. net_base) +. 1.0 in
          (* measured staleness per source change *)
          let staleness =
            List.concat_map
              (fun emp ->
                let src = Payroll.source_item emp and tgt = Payroll.target_item emp in
                List.filter_map
                  (fun (t1, v) ->
                    List.find_map
                      (fun (t2, v') ->
                        if t2 >= t1 && Value.equal v v' then Some (t2 -. t1) else None)
                      (Timeline.values_taken tl tgt)
                    |> fun x -> if t1 <= 2000.0 then x else None)
                  (Timeline.values_taken tl src))
              p.Payroll.employees
          in
          let max_staleness = snd (Stats.min_max staleness) in
          let holds =
            List.for_all
              (fun emp ->
                let r =
                  check ~horizon:2500.0 tl
                    (Guarantee.Metric_follows
                       ( {
                           Guarantee.leader = Payroll.source_item emp;
                           follower = Payroll.target_item emp;
                         },
                         kappa ))
                in
                r.Guarantee.holds)
              p.Payroll.employees
          in
          Table.add_row table
            [
              Table.cell_f notify_latency;
              Table.cell_f net_base;
              Table.cell_f kappa;
              Table.cell_f max_staleness;
              yes_no holds;
            ])
        [ 0.05; 0.5 ])
    [ 0.5; 1.0; 2.0; 5.0 ];
  Table.print table;
  print_endline
    "Shape check: measured staleness is always below the derived kappa, and\n\
     both scale with the interface latencies.\n"

(* ------------------------------------------------------------------ *)
(* E4: Demarcation Protocol vs centralized coordination (§6.1)         *)
(* ------------------------------------------------------------------ *)

(* Baseline: a central coordinator validates every X update globally.
   Two messages and a round trip per operation, no locality at all. *)
type coord_msg = Coord_req of int * float | Coord_reply of float

let centralized_run ~seed ~ops =
  let sim = Sim.create ~seed () in
  let net = Net.create ~sim () in
  let x = ref 0 and y = ref 100 in
  let violations = ref 0 in
  let completed = ref 0 in
  let latencies = ref [] in
  Net.register net ~site:"coordinator" (fun msg ->
      match msg with
      | Coord_req (v, started) ->
        if v <= !y then begin
          x := v;
          if !x > !y then incr violations
        end;
        Net.send net ~from_site:"coordinator" ~to_site:"branch" (Coord_reply started)
      | Coord_reply _ -> ());
  Net.register net ~site:"branch" (fun msg ->
      match msg with
      | Coord_reply started ->
        incr completed;
        latencies := (Sim.now sim -. started) :: !latencies
      | Coord_req _ -> ());
  let rng = Cm_util.Prng.split (Sim.rng sim) in
  for i = 1 to ops do
    Sim.schedule_at sim (float_of_int i *. 10.0) (fun () ->
        let v = Cm_util.Prng.int rng 100 in
        Net.send net ~from_site:"branch" ~to_site:"coordinator"
          (Coord_req (v, Sim.now sim)))
  done;
  Sim.run sim;
  (Net.messages_sent net, !completed, Stats.mean !latencies, !violations)

let demarcation_run ~seed ~policy ~ops =
  let obs = Obs.create () in
  let b =
    Bank.create ~config:Sys_.Config.(seeded seed |> with_obs obs) ~policy ()
  in
  let sim = Sys_.sim b.Bank.system in
  let rng = Cm_util.Prng.split (Sim.rng sim) in
  let requested = ref 0 in
  let completed = ref 0 in
  let latencies = ref [] in
  for i = 1 to ops do
    Sim.schedule_at sim (float_of_int i *. 10.0) (fun () ->
        let v = Cm_util.Prng.int rng 100 in
        let started = Sim.now sim in
        match Bank.try_set_x b v with
        | Bank.Applied ->
          incr completed;
          latencies := (Sim.now sim -. started) :: !latencies
        | Bank.Requested ->
          incr requested;
          (* Retry once after the limit-change round. *)
          Sim.schedule sim ~delay:5.0 (fun () ->
              match Bank.try_set_x b v with
              | Bank.Applied ->
                incr completed;
                latencies := (Sim.now sim -. started) :: !latencies
              | Bank.Requested -> ()))
  done;
  Sys_.run b.Bank.system ~until:(float_of_int ops *. 10.0 +. 100.0) ;
  let tl = Sys_.timeline ~initial:(Bank.initial b) b.Bank.system in
  let g = check ~horizon:(float_of_int ops *. 10.0 +. 100.0) tl Bank.always_leq_guarantee in
  ( Obs.counter_total obs "net_sent",
    !completed,
    Stats.mean !latencies,
    !requested,
    g.Guarantee.holds )

let exp_e4 () =
  let ops = 200 in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E4: X <= Y over %d random X updates — Demarcation vs centralized \
            (paper: constraint always valid, local ops need no communication)"
           ops)
      ~columns:
        [ "scheme"; "msgs"; "msgs/op"; "mean latency (s)"; "limit reqs"; "X<=Y always" ]
  in
  let msgs_c, _done_c, lat_c, viol_c = centralized_run ~seed:41 ~ops in
  Table.add_row table
    [
      "centralized coordinator";
      string_of_int msgs_c;
      Table.cell_f (float_of_int msgs_c /. float_of_int ops);
      Table.cell_f ~digits:3 lat_c;
      "n/a";
      yes_no (viol_c = 0);
    ];
  List.iter
    (fun (policy, name) ->
      let msgs, _completed, lat, requested, holds =
        demarcation_run ~seed:42 ~policy ~ops
      in
      Table.add_row table
        [
          name;
          string_of_int msgs;
          Table.cell_f (float_of_int msgs /. float_of_int ops);
          Table.cell_f ~digits:3 lat;
          string_of_int requested;
          yes_no holds;
        ])
    [
      (Cm_core.Demarcation.Conservative, "demarcation (conservative)");
      (Cm_core.Demarcation.Eager, "demarcation (eager)");
    ];
  Table.print table;
  print_endline
    "Shape check: demarcation sends far fewer messages per operation (most\n\
     updates stay inside the local limit) and eager grants need fewer\n\
     limit-change rounds than conservative ones; the constraint never breaks.\n"

(* ------------------------------------------------------------------ *)
(* E5: referential integrity violated at most `bound` seconds (§6.2)   *)
(* ------------------------------------------------------------------ *)

let exp_e5 () =
  let table =
    Table.create
      ~title:
        "E5: referential integrity — orphan windows stay within the bound \
         (paper: violation tolerated for a bounded period only)"
      ~columns:
        [ "papers"; "churn interval (s)"; "max orphan window (s)"; "bound"; "holds" ]
  in
  List.iter
    (fun (papers, interval) ->
      let s = Stanford.create ~config:(Cm_core.System.Config.seeded (500 + papers)) ~people:2 () in
      let sim = Sys_.sim s.Stanford.system in
      let rng = Cm_util.Prng.split (Sim.rng sim) in
      let keys = List.init papers (fun i -> "paper" ^ string_of_int i) in
      List.iteri
        (fun i key ->
          let at = 10.0 +. (float_of_int i *. interval) in
          Sim.schedule_at sim at (fun () ->
              Stanford.publish_paper s ~key ~title:("T" ^ key) ~authors:[ "widom" ]);
          if Cm_util.Prng.bool rng then
            Sim.schedule_at sim (at +. (interval /. 2.0)) (fun () ->
                Stanford.withdraw_paper s ~key))
        keys;
      let horizon = 10.0 +. (float_of_int papers *. interval) +. 300.0 in
      Sys_.run s.Stanford.system ~until:horizon;
      let tl = Sys_.timeline s.Stanford.system in
      let bound = 60.0 in
      let holds, max_window =
        List.fold_left
          (fun (ok, worst) key ->
            let r =
              check ~horizon tl (Stanford.refint_guarantee ~key ~bound)
            in
            (* crude measured window: find first INS -> first GPaper write *)
            let ant = Item.make "BibPaper" ~params:[ Value.Str key ] in
            let con = Item.make "GPaper" ~params:[ Value.Str key ] in
            let window =
              match Timeline.changes tl ant, Timeline.changes tl con with
              | (t1, Some _) :: _, (t2, Some _) :: _ -> t2 -. t1
              | _ -> 0.0
            in
            (ok && r.Guarantee.holds, Float.max worst window))
          (true, 0.0) keys
      in
      Table.add_row table
        [
          string_of_int papers;
          Table.cell_f ~digits:0 interval;
          Table.cell_f max_window;
          Table.cell_f ~digits:0 bound;
          yes_no holds;
        ])
    [ (10, 120.0); (20, 60.0); (40, 30.0) ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* E6: monitor strategy's Flag/Tb guarantee (§6.3)                     *)
(* ------------------------------------------------------------------ *)

let monitor_run ~seed ~notify_latency ~moves =
  let locator item =
    match item.Item.base with
    | "RobotPos" -> "field"
    | "PlotPos" -> "plotter"
    | _ -> "console"
  in
  let system = Sys_.create ~config:(Cm_core.System.Config.seeded seed) locator in
  let sh_field = Sys_.add_shell system ~site:"field" in
  let sh_plot = Sys_.add_shell system ~site:"plotter" in
  let sh_console = Sys_.add_shell system ~site:"console" in
  let sim = Sys_.sim system in
  let make ~site ~shell ~base =
    let store = Cm_sources.Objstore.create () in
    Cm_sources.Objstore.put store ~cls:"pos" ~id:"r" [ ("coord", Value.Int 0) ];
    let tr =
      Cm_core.Tr_objstore.create ~sim ~store ~site
        ~emit:(Shell.emitter_for shell ~site)
        ~report:(fun k -> Shell.report_failure shell k)
        ~notify_latency ~notify_delta:(notify_latency *. 4.0)
        [
          {
            Cm_core.Tr_objstore.base;
            cls = "pos";
            attr = "coord";
            writable = false;
            notify = Cm_core.Tr_objstore.Plain;
          };
        ]
    in
    Sys_.register_translator system ~shell (Cm_core.Tr_objstore.cmi tr);
    tr
  in
  let tr_field = make ~site:"field" ~shell:sh_field ~base:"RobotPos" in
  let tr_plot = make ~site:"plotter" ~shell:sh_plot ~base:"PlotPos" in
  let x = Expr.Item ("RobotPos", [ Expr.Const (Value.Str "r") ]) in
  let y = Expr.Item ("PlotPos", [ Expr.Const (Value.Str "r") ]) in
  Sys_.install system (Strategy.monitor ~prefix:"m" ~delta:(notify_latency *. 4.0) ~x ~y ());
  let aux = Strategy.monitor_items ~prefix:"m" () in
  let rng = Cm_util.Prng.split (Sim.rng sim) in
  let move tr v =
    ignore
      (Cm_core.Tr_objstore.set_app tr
         (Item.make (if tr == tr_field then "RobotPos" else "PlotPos")
            ~params:[ Value.Str "r" ])
         (Value.Int v))
  in
  for i = 1 to moves do
    let t = float_of_int i *. 20.0 in
    let v = Cm_util.Prng.int rng 1000 in
    Sim.schedule_at sim t (fun () -> move tr_field v);
    Sim.schedule_at sim (t +. 1.0 +. Cm_util.Prng.float rng 2.0) (fun () ->
        move tr_plot v)
  done;
  (* Sample flag over time to compute coverage. *)
  let flag_true = ref 0 and samples = ref 0 in
  Sim.every sim ~period:0.5
    (fun () ->
      incr samples;
      match Shell.read_aux sh_console aux.Strategy.flag with
      | Some (Value.Bool true) -> incr flag_true
      | _ -> ())
    ~cancel:(fun () -> false);
  let horizon = float_of_int moves *. 20.0 +. 30.0 in
  Sys_.run system ~until:horizon;
  let tl =
    Sys_.timeline system
      ~initial:
        [
          (Item.make "RobotPos" ~params:[ Value.Str "r" ], Value.Int 0);
          (Item.make "PlotPos" ~params:[ Value.Str "r" ], Value.Int 0);
        ]
  in
  let kappa = (notify_latency *. 4.0) +. (notify_latency *. 4.0) +. 1.0 in
  let g =
    Guarantee.Monitor_window
      {
        flag = aux.Strategy.flag;
        tb = aux.Strategy.tb;
        x = Item.make "RobotPos" ~params:[ Value.Str "r" ];
        y = Item.make "PlotPos" ~params:[ Value.Str "r" ];
        kappa;
      }
  in
  let r = check ~horizon tl g in
  let coverage = float_of_int !flag_true /. float_of_int (max 1 !samples) in
  (r.Guarantee.holds, r.Guarantee.checked_points, coverage, kappa)

let exp_e6 () =
  let table =
    Table.create
      ~title:
        "E6: monitor strategy (read-only sources) — Flag/Tb guarantee \
         (paper §6.3: conditional guarantee via auxiliary CM data)"
      ~columns:
        [ "notify latency (s)"; "kappa"; "guarantee holds"; "obligations"; "flag uptime" ]
  in
  List.iter
    (fun notify_latency ->
      let holds, points, coverage, kappa =
        monitor_run ~seed:600 ~notify_latency ~moves:60
      in
      Table.add_row table
        [
          Table.cell_f notify_latency;
          Table.cell_f kappa;
          yes_no holds;
          string_of_int points;
          Table.cell_pct coverage;
        ])
    [ 0.25; 0.5; 1.0; 2.0 ];
  Table.print table;
  print_endline
    "Shape check: the guarantee holds at every latency; slower notifications\n\
     need a larger kappa and leave the flag down longer (lower uptime).\n"

(* ------------------------------------------------------------------ *)
(* E7: failure handling (§5)                                           *)
(* ------------------------------------------------------------------ *)

let exp_e7 () =
  let table =
    Table.create
      ~title:
        "E7: failure handling — metric failures invalidate only metric \
         guarantees; logical failures invalidate both; silent notify loss is \
         undetectable (§5)"
      ~columns:
        [
          "injected failure";
          "notices";
          "(1) status";
          "(4) status";
          "(2) actually holds";
        ]
  in
  let run mode =
    let config =
      let base = Cm_core.System.Config.seeded 700 in
      if mode = `Crash_recover then
        (* The recovery row needs the reliable transport (so undelivered
           firings are retransmitted) and a write-ahead journal (so the
           restarted site remembers them, §5). *)
        Cm_core.System.Config.(
          base
          |> with_reliable Cm_core.Reliable.default_config
          |> with_durability Cm_core.Journal.Journal_with_checkpoint)
      else base
    in
    let p = Payroll.create ~config ~employees:3 () in
    Payroll.install_propagation p;
    let pair =
      {
        Guarantee.leader = Payroll.source_item "e1";
        follower = Payroll.target_item "e1";
      }
    in
    let g1 =
      Sys_.declare_guarantee p.Payroll.system ~sites:[ "sf"; "ny" ]
        (Guarantee.Follows pair)
    in
    let g4 =
      Sys_.declare_guarantee p.Payroll.system ~sites:[ "sf"; "ny" ]
        (Guarantee.Metric_follows (pair, 10.0))
    in
    let notices = ref 0 in
    Shell.on_failure_notice p.Payroll.shell_a (fun ~origin:_ _ -> incr notices);
    (* Inject at t=50 on the source translator (notifications) or the
       target (writes), depending on the mode. *)
    Sim.schedule_at (Sys_.sim p.Payroll.system) 50.0 (fun () ->
        match mode with
        | `None | `Crash_recover -> ()
        | `Degraded ->
          Health.set (Tr_rel.health p.Payroll.tr_b)
            (Health.Degraded { extra_latency = 30.0 })
        | `Down -> Health.set (Tr_rel.health p.Payroll.tr_b) Health.Down
        | `Silent -> Health.set (Tr_rel.health p.Payroll.tr_a) Health.Silent_drop);
    Payroll.schedule_update p ~at:60.0 ~emp:"e1" ~salary:7777;
    Payroll.schedule_update p ~at:80.0 ~emp:"e1" ~salary:8888;
    if mode = `Crash_recover then begin
      (* The source site crashes after the last update but before its
         firing reaches the target.  The journal remembers the
         undelivered notification; the §5 restart protocol replays it,
         re-queues it under the new incarnation, and reports the crash
         as a metric failure. *)
      Sim.schedule_at (Sys_.sim p.Payroll.system) 80.5 (fun () ->
          Sys_.crash_site p.Payroll.system ~site:Payroll.site_a);
      Sim.schedule_at (Sys_.sim p.Payroll.system) 200.0 (fun () ->
          Sys_.restart_site p.Payroll.system ~site:Payroll.site_a)
    end;
    Sys_.run p.Payroll.system ~until:300.0;
    let tl = Sys_.timeline ~initial:p.Payroll.initial p.Payroll.system in
    let leads =
      check ~horizon:300.0 ~ignore_after:100.0 tl (Guarantee.Leads pair)
    in
    let status h = if Sys_.guarantee_valid h then "valid" else "invalidated" in
    ( string_of_int !notices,
      status g1,
      status g4,
      yes_no leads.Guarantee.holds )
  in
  List.iter
    (fun (mode, label) ->
      let notices, s1, s4, leads = run mode in
      Table.add_row table [ label; notices; s1; s4; leads ])
    [
      (`None, "none (baseline)");
      (`Degraded, "metric (writes +30 s)");
      (`Down, "logical (target down)");
      (`Silent, "silent notify loss");
      (`Crash_recover, "crash + journal recovery");
    ];
  Table.print table;
  print_endline
    "Shape check: the silent-drop row shows zero notices and 'valid' statuses\n\
     while guarantee (2) is in fact broken — the undetectable failure the\n\
     paper warns about: such sources should not be given notify interfaces.\n"

(* ------------------------------------------------------------------ *)
(* E8: periodic guarantee in the banking scenario (§6.4)               *)
(* ------------------------------------------------------------------ *)

let exp_e8 () =
  let table =
    Table.create
      ~title:
        "E8: end-of-day banking — copies equal 17:15-08:00 daily (§6.4)"
      ~columns:[ "configuration"; "days"; "accounts"; "guarantee holds" ]
  in
  let run ~degrade =
    let b = Banking_day.create ~config:(Cm_core.System.Config.seeded 800) ~accounts:4 () in
    if degrade then
      (* Head-office writes take an extra hour: propagation misses the
         17:15 window start and the periodic guarantee must fail. *)
      Sim.schedule_at (Sys_.sim b.Banking_day.system) 1.0 (fun () ->
          Health.set
            (Tr_rel.health b.Banking_day.tr_ho)
            (Health.Degraded { extra_latency = 3600.0 }));
    Banking_day.run_days b ~days:3 ~updates_per_day:15;
    let tl = Sys_.timeline ~initial:b.Banking_day.initial b.Banking_day.system in
    List.for_all
      (fun acct ->
        (check ~horizon:(3.0 *. Banking_day.day) tl (Banking_day.guarantee acct))
          .Guarantee.holds)
      b.Banking_day.accounts
  in
  Table.add_row table
    [ "normal (15 min propagation)"; "3"; "4"; yes_no (run ~degrade:false) ];
  Table.add_row table
    [ "degraded (+1 h writes)"; "3"; "4"; yes_no (run ~degrade:true) ];
  Table.print table;
  print_endline
    "Shape check: the periodic guarantee holds when propagation fits the\n\
     15-minute budget and fails when the head office is too slow — the\n\
     guarantee is a real claim, not a tautology.\n"

(* ------------------------------------------------------------------ *)
(* E9: toolkit scalability                                             *)
(* ------------------------------------------------------------------ *)

let multi_pair_run ~pairs ~employees ~updates =
  let locator item =
    let base = item.Item.base in
    (* SalaryA<k> at site a<k>, SalaryB<k> at b<k>. *)
    let k = String.sub base 7 (String.length base - 7) in
    if String.length base > 6 && base.[6] = 'A' then "a" ^ k else "b" ^ k
  in
  let system = Sys_.create ~config:(Cm_core.System.Config.seeded 900) locator in
  let sim = Sys_.sim system in
  let trs = ref [] in
  for k = 1 to pairs do
    let sk = string_of_int k in
    let make ~site ~base ~notify =
      let shell = Sys_.add_shell system ~site in
      let db = Db.create () in
      ignore
        (Db.exec db "CREATE TABLE employees (empid TEXT PRIMARY KEY, salary INT NOT NULL)");
      for e = 1 to employees do
        ignore
          (Db.exec db "INSERT INTO employees VALUES ($n, 100)"
             ~params:[ ("n", Value.Str ("e" ^ string_of_int e)) ])
      done;
      let tr =
        Tr_rel.create ~sim ~db ~site
          ~emit:(Shell.emitter_for shell ~site)
          ~report:(fun r -> Shell.report_failure shell r)
          [
            {
              Tr_rel.base;
              params = [ "n" ];
              read_sql = Some "SELECT salary FROM employees WHERE empid = $n";
              write_sql = Some "UPDATE employees SET salary = $b WHERE empid = $n";
              delete_sql = None;
              notify =
                Some
                  {
                    Tr_rel.table = "employees";
                    column = "salary";
                    key_column = "empid";
                    send = notify;
                    filter = None;
                    filter_expr = None;
                  };
              no_spontaneous = false;
    periodic = None;
            };
          ]
      in
      Sys_.register_translator system ~shell (Tr_rel.cmi tr);
      tr
    in
    let tr_a = make ~site:("a" ^ sk) ~base:("SalaryA" ^ sk) ~notify:true in
    let _tr_b = make ~site:("b" ^ sk) ~base:("SalaryB" ^ sk) ~notify:false in
    Sys_.install system
      (Strategy.propagate ~prefix:("p" ^ sk) ~delta:10.0
         ~source:(Interface.family ("SalaryA" ^ sk) [ "n" ])
         ~target:(Interface.family ("SalaryB" ^ sk) [ "n" ])
         ());
    trs := tr_a :: !trs
  done;
  let trs = Array.of_list !trs in
  let rng = Cm_util.Prng.split (Sim.rng sim) in
  for i = 1 to updates do
    Sim.schedule_at sim (float_of_int i *. 1.0) (fun () ->
        let tr = trs.(Cm_util.Prng.int rng (Array.length trs)) in
        let emp = "e" ^ string_of_int (1 + Cm_util.Prng.int rng employees) in
        ignore
          (Tr_rel.exec_app tr "UPDATE employees SET salary = $b WHERE empid = $n"
             ~params:[ ("b", Value.Int (Cm_util.Prng.int rng 10000)); ("n", Value.Str emp) ]))
  done;
  let t0 = Sys.time () in
  Sys_.run system ~until:(float_of_int updates +. 100.0);
  let elapsed = Sys.time () -. t0 in
  let events = Trace.length (Sys_.trace system) in
  (events, elapsed, Net.messages_sent (Sys_.net system))

let exp_e9 () =
  let table =
    Table.create
      ~title:"E9: toolkit scalability — event throughput vs sites and constraints"
      ~columns:
        [ "site pairs"; "employees/pair"; "updates"; "trace events"; "events/s (wall)";
          "messages" ]
  in
  List.iter
    (fun (pairs, employees) ->
      let updates = 500 in
      let events, elapsed, msgs = multi_pair_run ~pairs ~employees ~updates in
      Table.add_row table
        [
          string_of_int pairs;
          string_of_int employees;
          string_of_int updates;
          string_of_int events;
          (if elapsed > 0.0 then
             Printf.sprintf "%.0f" (float_of_int events /. elapsed)
           else "inf");
          string_of_int msgs;
        ])
    [ (1, 10); (4, 10); (16, 10); (4, 100); (4, 1000) ];
  Table.print table

(* ------------------------------------------------------------------ *)
(* E10: conditional notify reduces message traffic (§3.1.1)            *)
(* ------------------------------------------------------------------ *)

let exp_e10 () =
  let table =
    Table.create
      ~title:
        "E10: conditional notify — in-source filtering cuts notifications \
         (paper §3.1.1: 'in addition to reducing communication costs')"
      ~columns:
        [ "threshold"; "updates"; "notifications"; "reduction"; "(1) holds"; "(2) holds" ]
  in
  let updates = 300 in
  List.iter
    (fun threshold ->
      let mode =
        if threshold = 0.0 then Payroll.Notify else Payroll.Conditional threshold
      in
      let p = Payroll.create ~config:(Cm_core.System.Config.seeded 1000) ~employees:1 ~mode () in
      Payroll.install_propagation p;
      let sim = Sys_.sim p.Payroll.system in
      let rng = Cm_util.Prng.split (Sim.rng sim) in
      (* Random walk: mostly small moves, occasionally large ones. *)
      let current = ref 1000 in
      for i = 1 to updates do
        Sim.schedule_at sim (float_of_int i *. 10.0) (fun () ->
            let step = if Cm_util.Prng.int rng 10 = 0 then 500 else 20 in
            current := max 100 (Cm_workload.Gen.random_walk rng ~current:!current ~step);
            Payroll.update_salary p ~emp:"e1" ~salary:!current)
      done;
      Sys_.run p.Payroll.system ~until:(float_of_int updates *. 10.0 +. 100.0);
      let trace = Sys_.trace p.Payroll.system in
      let notifications = List.length (Trace.named trace "N") in
      let ws = List.length (Trace.named trace "Ws") in
      let tl = Sys_.timeline ~initial:p.Payroll.initial p.Payroll.system in
      let pair =
        {
          Guarantee.leader = Payroll.source_item "e1";
          follower = Payroll.target_item "e1";
        }
      in
      let horizon = float_of_int updates *. 10.0 +. 100.0 in
      let g1 = check ~horizon tl (Guarantee.Follows pair) in
      let g2 =
        check ~horizon ~ignore_after:(horizon -. 200.0) tl (Guarantee.Leads pair)
      in
      Table.add_row table
        [
          Table.cell_pct threshold;
          string_of_int ws;
          string_of_int notifications;
          Table.cell_pct
            (if ws = 0 then 0.0
             else 1.0 -. (float_of_int notifications /. float_of_int ws));
          yes_no g1.Guarantee.holds;
          yes_no g2.Guarantee.holds;
        ])
    [ 0.0; 0.01; 0.05; 0.1; 0.25 ];
  Table.print table;
  print_endline
    "Shape check: higher thresholds suppress more notifications; guarantee (1)\n\
     survives (the target only ever sees real source values) while (2) fails\n\
     as soon as any update is filtered.\n"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let micro_benchmarks () =
  let open Bechamel in
  let open Toolkit in
  (* Fixtures shared by the micro-benchmarks. *)
  let rule_text = "cached: N(Salary1(n), b) ->[5] (Cx != b) ? WR(Salary2(n), b), W(Cx, b)" in
  let rule = Cm_rule.Parser.parse_rule rule_text in
  let desc =
    Event.n (Item.make "Salary1" ~params:[ Value.Str "e7" ]) (Value.Int 4242)
  in
  let sql = "UPDATE employees SET salary = $b WHERE empid = $n" in
  let db = Db.create () in
  ignore (Db.exec db "CREATE TABLE employees (empid TEXT PRIMARY KEY, salary INT NOT NULL)");
  for i = 1 to 100 do
    ignore
      (Db.exec db "INSERT INTO employees VALUES ($n, 100)"
         ~params:[ ("n", Value.Str ("e" ^ string_of_int i)) ])
  done;
  let stmt = Cm_relational.Sql_parser.parse sql in
  (* A fixed trace for guarantee checking. *)
  let trace = Trace.create () in
  let x = Item.make "X" and y = Item.make "Y" in
  for i = 1 to 200 do
    let t = float_of_int i in
    ignore (Trace.record trace ~time:t ~site:"a" (Event.ws x (Value.Int i)));
    ignore (Trace.record trace ~time:(t +. 0.4) ~site:"b" (Event.w y (Value.Int i)))
  done;
  let tl = Timeline.of_trace trace in
  let pair = { Guarantee.leader = x; follower = y } in
  (* A 800-event engine-produced trace for the validity checker. *)
  let vp = Payroll.create ~config:(Cm_core.System.Config.seeded 2) ~employees:5 () in
  Payroll.install_propagation vp;
  Payroll.random_updates vp ~mean_interarrival:5.0 ~until:1000.0;
  Sys_.run vp.Payroll.system ~until:1100.0;
  let validity_rules = Sys_.all_rules vp.Payroll.system in
  let validity_trace = Sys_.trace vp.Payroll.system in
  let propagation_round () =
    let p = Payroll.create ~config:(Cm_core.System.Config.seeded 1) ~employees:2 () in
    Payroll.install_propagation p;
    Payroll.schedule_update p ~at:1.0 ~emp:"e1" ~salary:123;
    Sys_.run p.Payroll.system ~until:20.0
  in
  let tests =
    [
      Test.make ~name:"rule-parse" (Staged.stage (fun () ->
          ignore (Cm_rule.Parser.parse_rule rule_text)));
      Test.make ~name:"template-match" (Staged.stage (fun () ->
          ignore (Template.matches rule.Rule.lhs desc ~seed:Expr.empty_env)));
      Test.make ~name:"sql-parse" (Staged.stage (fun () ->
          ignore (Cm_relational.Sql_parser.parse sql)));
      Test.make ~name:"sql-update" (Staged.stage (fun () ->
          ignore
            (Db.exec_stmt db stmt
               ~params:[ ("b", Value.Int 500); ("n", Value.Str "e50") ])));
      Test.make ~name:"guarantee-check-400ev" (Staged.stage (fun () ->
          ignore (Guarantee.check ~horizon:300.0 tl (Guarantee.Follows pair))));
      Test.make ~name:"timeline-build-400ev" (Staged.stage (fun () ->
          ignore (Timeline.of_trace trace)));
      Test.make
        ~name:
          (Printf.sprintf "validity-check-%dev" (Trace.length validity_trace))
        (Staged.stage (fun () ->
             ignore
               (Validity.check ~initial:vp.Payroll.initial ~rules:validity_rules
                  ~locator:(Sys_.locator vp.Payroll.system) validity_trace)));
      Test.make ~name:"propagation-roundtrip" (Staged.stage propagation_round);
    ]
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name:"cm" tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let table =
    Table.create ~title:"micro-benchmarks (Bechamel, monotonic clock)"
      ~columns:[ "operation"; "time/run" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (t :: _) -> t
        | _ -> nan
      in
      rows := (name, ns) :: !rows)
    results;
  List.iter
    (fun (name, ns) ->
      let human =
        if Float.is_nan ns then "n/a"
        else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
        else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
        else Printf.sprintf "%.0f ns" ns
      in
      Table.add_row table [ name; human ])
    (List.sort compare !rows);
  Table.print table

(* ------------------------------------------------------------------ *)
(* E11 (ablation): why in-order message processing matters (App. A.2)  *)
(* ------------------------------------------------------------------ *)

let exp_e11 () =
  let table =
    Table.create
      ~title:
        "E11 (ablation): in-order delivery disabled — the requirement \
         'discovered during the process of verification' (\xc2\xa74.2.3, App. A.2 p7)"
      ~columns:
        [ "network"; "(1)"; "(3) strictly-follows"; "out-of-order violations"; "converged" ]
  in
  let run ~fifo =
    let p =
      Payroll.create
        ~config:
          Sys_.Config.(
            seeded 1100 |> with_fifo fifo
            |> with_latency { Net.base = 0.3; jitter = 3.0 })
        ~employees:1 ()
    in
    Payroll.install_propagation ~delta:20.0 p;
    (* Rapid-fire updates so reordering has material to work with. *)
    for i = 1 to 60 do
      Payroll.schedule_update p ~at:(float_of_int i *. 2.0) ~emp:"e1"
        ~salary:(2000 + i)
    done;
    Sys_.run p.Payroll.system ~until:300.0;
    let tl = Sys_.timeline ~initial:p.Payroll.initial p.Payroll.system in
    let pair =
      { Guarantee.leader = Payroll.source_item "e1"; follower = Payroll.target_item "e1" }
    in
    let g1 = check ~horizon:300.0 tl (Guarantee.Follows pair) in
    let g3 = check ~horizon:300.0 tl (Guarantee.Strictly_follows pair) in
    let ooo =
      List.length
        (List.filter
           (function Validity.Out_of_order _ -> true | _ -> false)
           (Sys_.check_validity p.Payroll.system))
    in
    let converged =
      Value.equal (Payroll.salary_at p `A "e1") (Payroll.salary_at p `B "e1")
    in
    (g1, g3, ooo, converged)
  in
  List.iter
    (fun (fifo, label) ->
      let g1, g3, ooo, converged = run ~fifo in
      Table.add_row table
        [
          label;
          yes_no g1.Guarantee.holds;
          yes_no g3.Guarantee.holds;
          string_of_int ooo;
          yes_no converged;
        ])
    [ (true, "FIFO (paper's assumption)"); (false, "reordering allowed") ];
  Table.print table;
  print_endline
    "Shape check: without in-order processing, guarantee (3) breaks, the\n\
     validity checker pinpoints the out-of-order firings, and the copies can\n\
     end up permanently diverged — exactly the 'important detail discovered\n\
     during verification' the paper reports.\n"

(* ------------------------------------------------------------------ *)
(* E12 (ablation): cached propagation over a periodic-notify source    *)
(* ------------------------------------------------------------------ *)

let periodic_payroll ~seed ~cached ~changes =
  let locator item =
    match item.Item.base with "Src" -> "a" | _ -> "b"
  in
  let obs = Obs.create () in
  let system =
    Sys_.create ~config:Sys_.Config.(seeded seed |> with_obs obs) locator
  in
  let shell_a = Sys_.add_shell system ~site:"a" in
  let shell_b = Sys_.add_shell system ~site:"b" in
  let db_a = Db.create () and db_b = Db.create () in
  List.iter
    (fun db ->
      ignore (Db.exec db "CREATE TABLE t (id TEXT PRIMARY KEY, v INT NOT NULL)");
      ignore (Db.exec db "INSERT INTO t VALUES ('k', 0)"))
    [ db_a; db_b ];
  let binding base ~periodic =
    {
      Tr_rel.base;
      params = [];
      read_sql = Some "SELECT v FROM t";
      write_sql = Some "UPDATE t SET v = $b";
      delete_sql = None;
      notify =
        Some
          { Tr_rel.table = "t"; column = "v"; key_column = "id"; send = false;
            filter = None; filter_expr = None };
      no_spontaneous = false;
      periodic;
    }
  in
  let tr_a =
    Tr_rel.create ~sim:(Sys_.sim system) ~db:db_a ~site:"a"
      ~emit:(Shell.emitter_for shell_a ~site:"a")
      ~report:(fun k -> Shell.report_failure shell_a k)
      [ binding "Src" ~periodic:(Some 30.0) ]
  in
  let tr_b =
    Tr_rel.create ~sim:(Sys_.sim system) ~db:db_b ~site:"b"
      ~emit:(Shell.emitter_for shell_b ~site:"b")
      ~report:(fun k -> Shell.report_failure shell_b k)
      [ binding "Tgt" ~periodic:None ]
  in
  Sys_.register_translator system ~shell:shell_a (Tr_rel.cmi tr_a);
  Sys_.register_translator system ~shell:shell_b (Tr_rel.cmi tr_b);
  let src = Interface.plain "Src" and tgt = Interface.plain "Tgt" in
  (if cached then
     Sys_.install system
       (Strategy.propagate_cached ~delta:10.0 ~source:src ~target:tgt ~cache:"CSrc" ())
   else Sys_.install system (Strategy.propagate ~delta:10.0 ~source:src ~target:tgt ()));
  (* A handful of real changes over an hour of periodic reports. *)
  for i = 1 to changes do
    Sim.schedule_at (Sys_.sim system) (float_of_int i *. 600.0) (fun () ->
        ignore
          (Tr_rel.exec_app tr_a "UPDATE t SET v = $b"
             ~params:[ ("b", Value.Int (100 * i)) ]))
  done;
  Sys_.run system ~until:3600.0;
  let trace = Sys_.trace system in
  let notifications = List.length (Trace.named trace "N") in
  let write_requests = List.length (Trace.named trace "WR") in
  let fire_messages = Obs.counter_total obs "net_sent" in
  let tl =
    Sys_.timeline system
      ~initial:[ (Item.make "Src", Value.Int 0); (Item.make "Tgt", Value.Int 0) ]
  in
  let pair = { Guarantee.leader = Item.make "Src"; follower = Item.make "Tgt" } in
  let g1 = check ~horizon:3600.0 tl (Guarantee.Follows pair) in
  (notifications, write_requests, fire_messages, g1.Guarantee.holds)

let exp_e12 () =
  let table =
    Table.create
      ~title:
        "E12 (ablation): periodic-notify source, 5 real changes in 1 h of \
         30 s reports — plain vs cached propagation (\xc2\xa73.2's Cx cache)"
      ~columns:[ "strategy"; "notifications"; "write requests"; "messages"; "(1) holds" ]
  in
  List.iter
    (fun (cached, label) ->
      let n, wr, msgs, g1 = periodic_payroll ~seed:1200 ~cached ~changes:5 in
      Table.add_row table
        [ label; string_of_int n; string_of_int wr; string_of_int msgs; yes_no g1 ])
    [ (false, "propagate"); (true, "propagate-cached") ];
  Table.print table;
  print_endline
    "Shape check: both receive ~120 periodic notifications, but the cached\n\
     strategy only issues a write request when the reported value differs\n\
     from its Cx cache — the communication saving of the paper's \xc2\xa73.2 cache\n\
     example, without weakening guarantee (1).\n"

(* ------------------------------------------------------------------ *)
(* E13: retransmission overhead vs loss rate (§5, App. A.2 property 7) *)
(* ------------------------------------------------------------------ *)

let exp_e13 () =
  let module Reliable = Cm_core.Reliable in
  let run config =
    let p = Payroll.create ~config ~employees:3 () in
    Payroll.install_propagation p;
    Payroll.random_updates p ~mean_interarrival:20.0 ~until:500.0;
    Sys_.run p.Payroll.system ~until:700.0;
    p
  in
  let finals p =
    List.map
      (fun emp -> (Payroll.salary_at p `A emp, Payroll.salary_at p `B emp))
      p.Payroll.employees
  in
  let clean = finals (run (Sys_.Config.seeded 1300)) in
  let table =
    Table.create
      ~title:
        "E13: reliable delivery over a lossy network — retransmission \
         overhead vs loss rate (duplication fixed at 0.10, same seed \
         throughout; 'final = clean' compares against the zero-fault run)"
      ~columns:
        [ "drop"; "raw msgs"; "data"; "retransmits"; "acks"; "dups suppressed";
          "(1)"; "final = clean" ]
  in
  List.iter
    (fun drop ->
      (* All message counts below come from the Obs registry, not the raw
         Net/Reliable counters — the registry is the single source the
         `cmtool stats` command and EXPERIMENTS.md tables share. *)
      let obs = Obs.create () in
      let p =
        run
          Sys_.Config.(
            seeded 1300
            |> with_faults { Net.drop_prob = drop; dup_prob = 0.1 }
            |> with_reliable Reliable.default_config
            |> with_obs obs)
      in
      record_snapshot (Printf.sprintf "e13-drop-%.2f" drop) obs;
      let c name = Obs.counter_total obs name in
      let g1 =
        Sys_.check_guarantee ~initial:p.Payroll.initial p.Payroll.system
          (Guarantee.Follows
             {
               Guarantee.leader = Payroll.source_item "e1";
               follower = Payroll.target_item "e1";
             })
      in
      Table.add_row table
        [
          Printf.sprintf "%.2f" drop;
          string_of_int (c "net_sent");
          string_of_int (c "reliable_data_sent");
          string_of_int (c "reliable_retransmits");
          string_of_int (c "reliable_acks_sent");
          string_of_int (c "reliable_dup_suppressed");
          yes_no g1.Guarantee.holds;
          yes_no (finals p = clean);
        ])
    [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.5 ];
  Table.print table;
  print_endline
    "Shape check: the application-level outcome is identical at every loss\n\
     rate — same final stores as the zero-fault run, guarantee (1) intact —\n\
     while the raw message count grows with the loss rate: the cost of\n\
     re-earning Appendix A.2's property 7 is paid entirely in\n\
     retransmissions and acks, never in correctness.\n"

(* ------------------------------------------------------------------ *)
(* E14: crash recovery — journal overhead, §5's crash→metric mapping   *)
(* ------------------------------------------------------------------ *)

let exp_e14 () =
  let module Journal = Cm_core.Journal in
  let module Chaos = Cm_chaos.Chaos in
  (* One schedule, three durability modes.  Crash windows of up to 120 s
     deliberately outlast the reliable layer's ~85 s retransmission
     chain: those are exactly the crashes a journal-free configuration
     cannot ride out. *)
  let spec durability =
    {
      Chaos.default_spec with
      seed = 1400;
      events = 300;
      crashes = 8;
      crash_min_len = 20.0;
      crash_max_len = 120.0;
      durability;
    }
  in
  let table =
    Table.create
      ~title:
        "E14: crash recovery under a randomized 8-crash payroll schedule \
         (seed 1400, 300 events, crash windows 20-120 s, identical \
         schedule throughout) — journal overhead vs what it buys"
      ~columns:
        [ "durability"; "appends"; "ckpts"; "replayed"; "requeued";
          "give-ups"; "lost"; "dup"; "logical"; "metric"; "final = oracle" ]
  in
  List.iter
    (fun (durability, label) ->
      let r = Chaos.run (spec durability) in
      Table.add_row table
        [
          label;
          string_of_int r.Chaos.journal_appends;
          string_of_int r.Chaos.journal_checkpoints;
          string_of_int r.Chaos.replayed_records;
          string_of_int r.Chaos.requeued;
          string_of_int r.Chaos.give_ups;
          string_of_int r.Chaos.lost_firings;
          string_of_int r.Chaos.duplicate_firings;
          string_of_int r.Chaos.logical_notices;
          string_of_int r.Chaos.metric_notices;
          yes_no r.Chaos.final_state_matches;
        ])
    [
      (Journal.None, "none");
      (Journal.Journal, "journal");
      (Journal.Journal_with_checkpoint, "journal+ckpt");
    ];
  Table.print table;
  print_endline
    "Shape check: without a journal the >85 s crashes exhaust the\n\
     retransmission chains and updates are lost for good — logical\n\
     failures, diverged final state.  With one, every crash is re-queued\n\
     on restart: zero lost or duplicated firings, the final state equals\n\
     the fault-free oracle's, and crashes surface only as *metric*\n\
     failure notices — the paper's \xc2\xa75 claim that \"crashes can be\n\
     mapped to metric failures if the database can remember messages\n\
     that need to be sent out upon recovery\".  Checkpoints trade a few\n\
     extra appends for a shorter replay.\n"

(* ------------------------------------------------------------------ *)
(* E15: rule/event discrimination index — indexed vs naive dispatch    *)
(* ------------------------------------------------------------------ *)

(* Set by --smoke: reduced E15/E17 sweeps sized for CI. *)
let smoke_mode = ref false

(* One measured run: [sites] shells, [constraints] rules per shell (all
   sharing the descriptor name "Upd", so only the discrimination
   index's base bucketing separates them), [events] update events
   spread round-robin over sites at [rate] events per simulated second.
   Each event matches exactly one rule, whose RHS chains a site-free
   "Done" event that matches nothing — so the naive dispatcher pays two
   full scans per update (the hit and the chained miss) exactly as the
   pre-index shell did, while the indexed dispatcher touches one
   single-entry bucket and two empty ones. *)
let e15_run ~dispatch ~sites ~constraints ~events ~rate =
  let site_of s = "s" ^ string_of_int s in
  let base_of s k = Printf.sprintf "X%d_%d" s k in
  let locator item =
    let base = item.Item.base in
    match String.index_opt base '_' with
    | Some i -> "s" ^ String.sub base 1 (i - 1)
    | None -> site_of 0
  in
  let config = Sys_.Config.(seeded 1500 |> with_dispatch dispatch) in
  let system = Sys_.create ~config locator in
  let sim = Sys_.sim system in
  let shells =
    Array.init sites (fun s -> Sys_.add_shell system ~site:(site_of s))
  in
  let done_step =
    {
      Rule.guard = Expr.Const (Value.Bool true);
      template = Template.make "Done" [ Expr.Var "v" ];
    }
  in
  (* Rules are distributed by LHS site (§4.1): each shell receives only
     the [constraints] rules it is responsible for triggering. *)
  Array.iteri
    (fun s shell ->
      let rules =
        List.init constraints (fun k ->
            Rule.make
              ~id:(Printf.sprintf "r%d_%d" s k)
              ~lhs:(Template.make "Upd" [ Expr.Item (base_of s k, []); Expr.Var "v" ])
              (Rule.Steps [ done_step ]))
      in
      Shell.install_strategy shell rules)
    shells;
  let emitters =
    Array.init sites (fun s -> Shell.emitter_for shells.(s) ~site:(site_of s))
  in
  let interval = 1.0 /. rate in
  (* A self-rescheduling driver, not [events] pre-queued closures: the
     sim heap stays shallow, so the measurement is dominated by dispatch
     cost rather than by priority-queue depth. *)
  let i = ref 0 in
  let rec drive () =
    if !i < events then begin
      let s = !i mod sites in
      let k = !i / sites mod constraints in
      let item = Item.make (base_of s k) in
      let desc =
        { Event.name = "Upd"; args = [ Event.Ai item; Event.Av (Value.Int !i) ] }
      in
      incr i;
      ignore (emitters.(s) desc ~kind:Event.Spontaneous);
      Sim.schedule sim ~delay:interval drive
    end
  in
  Sim.schedule_at sim 0.0 drive;
  let t0 = Sys.time () in
  let g0 = Gc.quick_stat () in
  Sys_.run system ~until:(float_of_int events *. interval +. 100.0);
  let g1 = Gc.quick_stat () in
  let elapsed = Sys.time () -. t0 in
  let trace_events = Trace.length (Sys_.trace system) in
  let alloc_words =
    g1.Gc.minor_words -. g0.Gc.minor_words
    +. (g1.Gc.major_words -. g0.Gc.major_words)
  in
  let throughput =
    if elapsed > 0.0 then float_of_int trace_events /. elapsed else infinity
  in
  ( trace_events,
    throughput,
    alloc_words /. float_of_int (max 1 events),
    Shell.rule_index_stats shells.(0) )

let exp_e15 () =
  let table =
    Table.create
      ~title:
        "E15: rule/event discrimination index — event throughput, indexed vs \
         retained naive matcher"
      ~columns:
        [ "sites"; "rules/site"; "rate"; "events"; "trace events";
          "naive ev/s"; "indexed ev/s"; "speedup"; "alloc w/ev (idx)";
          "buckets (s0)" ]
  in
  let events = if !smoke_mode then 4_000 else 30_000 in
  let sweep =
    if !smoke_mode then [ (4, 16, 100.0); (32, 256, 100.0) ]
    else
      [ (4, 16, 100.0); (8, 64, 100.0); (16, 128, 100.0); (16, 128, 1000.0);
        (32, 256, 100.0) ]
  in
  let obs = Obs.create () in
  let largest_speedup = ref 0.0 in
  List.iter
    (fun (sites, constraints, rate) ->
      let n_events, naive_tput, _, _ =
        e15_run ~dispatch:Shell.Naive ~sites ~constraints ~events ~rate
      in
      let n_events', indexed_tput, alloc_per_event, (buckets, largest_bucket) =
        e15_run ~dispatch:Shell.Indexed ~sites ~constraints ~events ~rate
      in
      (* Differential sanity at benchmark scale: both dispatchers must
         generate the exact same number of trace events. *)
      if n_events <> n_events' then
        failwith
          (Printf.sprintf "E15: naive produced %d events, indexed %d" n_events
             n_events');
      let speedup = indexed_tput /. naive_tput in
      if sites >= 32 && constraints >= 256 then largest_speedup := speedup;
      let labels =
        [ ("sites", string_of_int sites);
          ("constraints", string_of_int constraints);
          ("rate", Printf.sprintf "%.0f" rate) ]
      in
      Obs.gauge obs "e15_events_per_sec" ~labels:(("dispatch", "naive") :: labels)
        naive_tput;
      Obs.gauge obs "e15_events_per_sec"
        ~labels:(("dispatch", "indexed") :: labels)
        indexed_tput;
      Obs.gauge obs "e15_speedup" ~labels speedup;
      Obs.gauge obs "e15_alloc_words_per_event" ~labels alloc_per_event;
      Obs.gauge obs "e15_index_buckets" ~labels (float_of_int buckets);
      Obs.gauge obs "e15_index_largest_bucket" ~labels
        (float_of_int largest_bucket);
      Table.add_row table
        [
          string_of_int sites;
          string_of_int constraints;
          Printf.sprintf "%.0f" rate;
          string_of_int events;
          string_of_int n_events;
          Printf.sprintf "%.0f" naive_tput;
          Printf.sprintf "%.0f" indexed_tput;
          Printf.sprintf "%.1fx" speedup;
          Printf.sprintf "%.0f" alloc_per_event;
          Printf.sprintf "%d (max %d)" buckets largest_bucket;
        ])
    sweep;
  record_snapshot "e15" obs;
  Table.print table;
  Printf.printf
    "Shape check: indexed dispatch >= 5x naive at 32 sites x 256 rules/site: %s\n\
     (matching stays byte-identical: the differential suite and the golden\n\
     traces hold both dispatchers to the same firings in the same order)\n"
    (if !largest_speedup >= 5.0 then "yes"
     else Printf.sprintf "NO (%.1fx)" !largest_speedup)

(* ------------------------------------------------------------------ *)
(* E16: runtime evolution — guarantee survival across the §4.2.3       *)
(* interface change, and incremental cutover cost vs full rebuild      *)
(* ------------------------------------------------------------------ *)

let exp_e16 () =
  let module Evolution = Cm_core.Evolution in
  let module Derive = Cm_core.Derive in
  let module Rule_index = Cm_rule.Rule_index in
  (* Part 1: the survival matrix.  Both epochs' programs come from
     really-built payroll systems — the notify+propagate configuration
     and the §4.2.3 read-only+polling replacement (one employee, so the
     single representative poller keeps strictly-follows provable).  The
     target's no-spontaneous-write statement is administrative knowledge
     in both worlds, as in the shipped interfaces.rules. *)
  let before =
    Payroll.create ~config:(Sys_.Config.seeded 1600) ~employees:1 ()
  in
  Payroll.install_propagation before;
  let after =
    Payroll.create ~config:(Sys_.Config.seeded 1601) ~employees:1
      ~mode:Payroll.Read_only ()
  in
  Payroll.install_polling ~period:120.0 after;
  let nsw = Interface.no_spontaneous_write Payroll.target_pattern in
  let survivals =
    Evolution.compare_programs
      ~interfaces_before:(Sys_.interface_rules before.Payroll.system @ [ nsw ])
      ~interfaces_after:(Sys_.interface_rules after.Payroll.system @ [ nsw ])
      ~strategy_before:(Sys_.strategy_rules before.Payroll.system)
      ~strategy_after:(Sys_.strategy_rules after.Payroll.system)
      ~constraints:[ ("Salary1", "Salary2") ]
  in
  let table =
    Table.create
      ~title:
        "E16: guarantee survival across the \xc2\xa74.2.3 interface change \
         (notify+propagate -> read-only+poll every 120 s)"
      ~columns:[ "guarantee"; "before"; "after"; "survival" ]
  in
  (* First line of the prover's explanation only — the full argument is
     what `cmtool evolve` prints. *)
  let short v =
    let s = Derive.verdict_to_string v in
    match String.index_opt s '\n' with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  List.iter
    (fun cs ->
      List.iter
        (fun gs ->
          Table.add_row table
            [
              gs.Evolution.gs_name;
              short gs.Evolution.gs_before;
              short gs.Evolution.gs_after;
              Evolution.survival_status gs.Evolution.gs_survival;
            ])
        cs.Evolution.cs_guarantees)
    survivals;
  Table.print table;
  (* Part 2: what a cutover costs at the dispatch layer.  A shell with R
     installed background rules churns through K propose/cutover/retire
     cycles of a 4-rule program; the epoch path only touches the program
     delta, while the pre-evolution alternative — rebuilding the
     discrimination index from the full rule list — pays O(R) per
     replacement. *)
  let table =
    Table.create
      ~title:
        "E16b: cutover cost under churn — incremental epoch switch vs \
         full index rebuild"
      ~columns:
        [ "installed rules"; "cycles"; "epoch switch (us)"; "rebuild (us)";
          "ratio" ]
  in
  let cycles = 200 in
  List.iter
    (fun background ->
      let locator _ = "s0" in
      let system = Sys_.create ~config:(Sys_.Config.seeded 1602) locator in
      let shell = Sys_.add_shell system ~site:"s0" in
      let step v =
        {
          Rule.guard = Expr.Const (Value.Bool true);
          template = Template.make "Done" [ Expr.Var v ];
        }
      in
      let bg_rules =
        List.init background (fun k ->
            Rule.make
              ~id:(Printf.sprintf "bg%d" k)
              ~lhs:
                (Template.make "Upd"
                   [ Expr.Item ("X" ^ string_of_int k, []); Expr.Var "v" ])
              (Rule.Steps [ step "v" ]))
      in
      Shell.install_strategy shell bg_rules;
      let epoch_program i =
        List.init 4 (fun k ->
            Rule.make
              ~id:(Printf.sprintf "v%d_%d" i k)
              ~lhs:
                (Template.make "Upd"
                   [ Expr.Item ("Y" ^ string_of_int k, []); Expr.Var "v" ])
              (Rule.Steps [ step "v" ]))
      in
      let t0 = Sys.time () in
      for i = 1 to cycles do
        Shell.propose_epoch shell ~epoch:i (epoch_program i);
        Shell.cutover_epoch shell ~epoch:i;
        Shell.retire_epoch shell ~epoch:(i - 1)
      done;
      let incremental = Sys.time () -. t0 in
      let t0 = Sys.time () in
      for i = 1 to cycles do
        let index = Rule_index.create () in
        List.iter
          (fun r -> Rule_index.add index ~lhs:r.Rule.lhs ~site:None (r.Rule.id, r))
          (bg_rules @ epoch_program i)
      done;
      let rebuild = Sys.time () -. t0 in
      let per t = t /. float_of_int cycles *. 1e6 in
      Table.add_row table
        [
          string_of_int background;
          string_of_int cycles;
          Printf.sprintf "%.1f" (per incremental);
          Printf.sprintf "%.1f" (per rebuild);
          (if incremental > 0.0 then
             Printf.sprintf "%.1fx" (rebuild /. incremental)
           else "inf");
        ])
    [ 64; 256; 1024 ];
  Table.print table;
  print_endline
    "Shape check: the matrix reproduces \xc2\xa74.2.3 — (1), (3), (4) survive \
     the\nchange (with a larger kappa), (2) is lost because sampling can miss\n\
     values.  The per-cutover cost of the epoch path stays flat as the\n\
     installed program grows, while a full rebuild scales with it.\n"

(* ------------------------------------------------------------------ *)
(* E17: constraint-aware read routing — SLO sweep, 10^5-10^6 clients   *)
(* ------------------------------------------------------------------ *)

(* A star federation: four feeds mastered at the hub, one κ-bounded copy
   of each at its consumer site (κ ladder 5/10/20/40 s via the strategy's
   propagation delay), client populations co-located with the copies.
   Each client reads its local feed under a staleness SLO; the router
   serves the local replica iff its κ qualifies (κ ≤ SLO inclusive) and
   falls back to the master over the WAN link otherwise — so master
   offload grows monotonically as the SLO loosens, one rung per replica.
   Load comes from Readers.open_loop, whose Poisson-superposition trick
   makes the cost proportional to reads, not clients: the full run
   simulates 10^6 clients, --smoke 10^5.  Every decision is audited post
   hoc from the on_decision stream: served κ must be ≤ the SLO. *)
let exp_e17 () =
  let module Route = Cm_route.Route in
  let module Readers = Cm_workload.Readers in
  let replicas =
    (* (index, κ): κ = notify δ2 + propagation δ + write δ1 *)
    [ (0, 5.0); (1, 10.0); (2, 20.0); (3, 40.0) ]
  in
  let feed k = Printf.sprintf "Feed%d" k in
  let copy k = Printf.sprintf "Copy%d" k in
  let rsite k = Printf.sprintf "r%d" k in
  let program =
    String.concat "\n"
      (List.concat_map
         (fun (k, kappa) ->
           [
             Printf.sprintf "n%d: Ws(%s(n), b) ->[2] N(%s(n), b)" k (feed k)
               (feed k);
             Printf.sprintf "w%d: WR(%s(n), b) ->[1] W(%s(n), b)" k (copy k)
               (copy k);
             Printf.sprintf "q%d: Ws(%s(n), b) -> FALSE" k (copy k);
             Printf.sprintf "p%d: N(%s(n), b) ->[%g] WR(%s(n), b)" k (feed k)
               (kappa -. 3.0) (copy k);
           ])
         replicas)
  in
  let rules = Parser.parse_rules program in
  let interfaces, strategy =
    List.partition (fun r -> Interface.classify r <> None) rules
  in
  let locator (item : Item.t) =
    (* Feedk -> hub, Copyk -> rk *)
    if String.length item.Item.base > 4 && String.sub item.Item.base 0 4 = "Feed"
    then "hub"
    else "r" ^ String.sub item.Item.base 4 (String.length item.Item.base - 4)
  in
  let obs = Obs.create () in
  let system =
    Sys_.create ~config:Sys_.Config.(seeded 1700 |> with_obs obs) locator
  in
  let net = Sys_.net system in
  List.iter
    (fun (k, _) ->
      (* WAN ladder: farther consumers pay more to reach the hub. *)
      let l = { Net.base = 0.02 +. (0.01 *. float_of_int k); jitter = 0.0 } in
      Net.set_latency net ~from_site:(rsite k) ~to_site:"hub" l;
      Net.set_latency net ~from_site:"hub" ~to_site:(rsite k) l)
    replicas;
  let route =
    Route.create ~interfaces ~strategy system
      ~constraints:(List.map (fun (k, _) -> (feed k, copy k)) replicas)
  in
  let clients_total = if !smoke_mode then 100_000 else 1_000_000 in
  let per_site = clients_total / List.length replicas in
  let clients = List.map (fun (k, _) -> (rsite k, per_site)) replicas in
  let rate_per_client = if !smoke_mode then 1e-4 else 5e-5 in
  let duration = if !smoke_mode then 200.0 else 400.0 in
  let rng = Cm_util.Prng.create ~seed:1700 in
  (* Per-sweep-point collector, swapped under one decision subscriber. *)
  let sink = ref (fun (_ : Route.decision) -> ()) in
  Route.on_decision route (fun d -> !sink d);
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E17: κ-SLO read routing, %d clients at 4 replica sites (κ \
            ladder 5/10/20/40 s)"
           clients_total)
      ~columns:
        [ "slo (s)"; "reads"; "replica"; "master"; "forced poll"; "offload";
          "p99 latency (s)"; "served κ ≤ slo" ]
  in
  let feed_of_site site =
    int_of_string (String.sub site 1 (String.length site - 1))
  in
  let offloads =
    List.map
      (fun slo ->
        let n_replica = ref 0 and n_master = ref 0 and n_poll = ref 0 in
        let latencies = ref [] and violations = ref 0 in
        sink :=
          (fun d ->
            (match d.Route.d_outcome with
             | Route.Replica -> incr n_replica
             | Route.Master -> incr n_master
             | Route.Forced_poll -> incr n_poll);
            latencies := d.Route.d_latency :: !latencies;
            match slo with
            | Some s when d.Route.d_served_kappa > s -> incr violations
            | _ -> ());
        let stop = Sim.now (Sys_.sim system) +. duration in
        Readers.open_loop (Sys_.sim system) ~rng ~clients ~rate_per_client
          ~until:stop (fun ~site ->
            ignore
              (Route.read ?within_kappa:slo route ~client_site:site
                 (feed (feed_of_site site))));
        Sys_.run system ~until:stop;
        let reads = !n_replica + !n_master + !n_poll in
        let offload =
          if reads = 0 then 0.0 else float_of_int !n_replica /. float_of_int reads
        in
        Table.add_row table
          [
            (match slo with Some s -> Printf.sprintf "%g" s | None -> "none");
            string_of_int reads;
            string_of_int !n_replica;
            string_of_int !n_master;
            string_of_int !n_poll;
            Printf.sprintf "%.1f%%" (100.0 *. offload);
            Printf.sprintf "%.3f" (Stats.percentile 0.99 !latencies);
            (if !violations = 0 then "ok"
             else Printf.sprintf "VIOLATED (%d)" !violations);
          ];
        offload)
      [ Some 3.0; Some 5.0; Some 10.0; Some 20.0; Some 40.0; None ]
  in
  sink := (fun _ -> ());
  Table.print table;
  let monotone =
    let rec check = function
      | a :: (b :: _ as rest) -> a <= b +. 1e-9 && check rest
      | _ -> true
    in
    check offloads
  in
  record_snapshot "e17" obs;
  Printf.printf
    "Shape check: master offload monotone in SLO: %s; κ ≤ SLO audited on \
     every routed read.\nThe κ = 5 copy is served at slo = 5 — the bound is \
     inclusive: both κ and SLO\nare end-to-end seconds.\n\n"
    (if monotone then "yes" else "NO")

(* ------------------------------------------------------------------ *)
(* E18: streaming-monitor soak — dispatch-indexed event throughput     *)
(* with and without live §3.3 monitors attached                        *)
(* ------------------------------------------------------------------ *)

(* E15's "Upd" events change no item state, so the monitor fast-rejects
   them and measures nothing.  E18 reuses E15's discrimination shape
   (32 shells × 256 single-bucket rules, indexed dispatch) but drives
   real writes: every event is a [W] the monitor must fold into its
   κ-window / follows-set / order-queue state.  One copy pair per site
   is watched as a full §3.3.1 family — the leader's k=0 item mirrored
   into a follower written in the same instant, so the streamed
   guarantees hold and the measurement is steady-state bookkeeping, not
   violation handling. *)
let e18_run ~monitor:with_monitor ~sites ~constraints ~events ~rate =
  let module Monitor = Cm_core.Monitor in
  let site_of s = "s" ^ string_of_int s in
  let base_of s k = Printf.sprintf "X%d_%d" s k in
  let follower_of s = base_of s 0 ^ "c" in
  let locator item =
    let base = item.Item.base in
    match String.index_opt base '_' with
    | Some i -> "s" ^ String.sub base 1 (i - 1)
    | None -> site_of 0
  in
  let config = Sys_.Config.(seeded 1800 |> with_dispatch Shell.Indexed) in
  let system = Sys_.create ~config locator in
  let sim = Sys_.sim system in
  let shells =
    Array.init sites (fun s -> Sys_.add_shell system ~site:(site_of s))
  in
  let done_step =
    {
      Rule.guard = Expr.Const (Value.Bool true);
      template = Template.make "Done" [ Expr.Var "v" ];
    }
  in
  Array.iteri
    (fun s shell ->
      let rules =
        List.init constraints (fun k ->
            Rule.make
              ~id:(Printf.sprintf "r%d_%d" s k)
              ~lhs:(Template.make "W" [ Expr.Item (base_of s k, []); Expr.Var "v" ])
              (Rule.Steps [ done_step ]))
      in
      Shell.install_strategy shell rules)
    shells;
  let m =
    if not with_monitor then None
    else begin
      let m = Monitor.create ~sim ~tick:1.0 () in
      Monitor.attach m (Sys_.trace system);
      for s = 0 to sites - 1 do
        (* κ far above the ~82 s re-write period of a watched leader at
           the full sweep size, so the soak measures bookkeeping, not
           staleness churn. *)
        Monitor.watch_copy m ~source:(base_of s 0) ~target:(follower_of s)
          ~kappa:(Some 200.0)
      done;
      Some m
    end
  in
  let emitters =
    Array.init sites (fun s -> Shell.emitter_for shells.(s) ~site:(site_of s))
  in
  let interval = 1.0 /. rate in
  let i = ref 0 in
  let rec drive () =
    if !i < events then begin
      let s = !i mod sites in
      let k = !i / sites mod constraints in
      let v = Value.Int !i in
      let desc = Event.w (Item.make (base_of s k)) v in
      incr i;
      ignore (emitters.(s) desc ~kind:Event.Spontaneous);
      (* Mirror the watched leader into its follower within the same
         instant: same-batch take keeps every streamed guarantee green. *)
      if k = 0 then
        ignore
          (emitters.(s) (Event.w (Item.make (follower_of s)) v)
             ~kind:Event.Spontaneous);
      Sim.schedule sim ~delay:interval drive
    end
  in
  Sim.schedule_at sim 0.0 drive;
  let horizon = (float_of_int events *. interval) +. 100.0 in
  (* Wall clock, not [Sys.time]: the CPU clock ticks at 10 ms on Linux,
     which is ±6% of a ~170 ms run — more than the overhead being
     measured.  The alternated best-of rounds absorb wall-clock noise. *)
  let t0 = Unix.gettimeofday () in
  Sys_.run system ~until:horizon;
  let elapsed = Unix.gettimeofday () -. t0 in
  let trace = Sys_.trace system in
  let trace_events = Trace.length trace in
  let throughput =
    if elapsed > 0.0 then float_of_int trace_events /. elapsed else infinity
  in
  (* Differential teeth: on the monitored run, every streamed family
     verdict must equal the post-hoc fold over the same trace. *)
  let mismatches =
    match m with
    | None -> 0
    | Some m ->
      Monitor.finalize m ~horizon;
      let tl = Timeline.of_trace trace in
      List.length
        (List.filter
           (fun (g, v) ->
             let rep = check ~horizon tl g in
             v.Monitor.v_holds <> rep.Guarantee.holds
             || v.Monitor.v_points <> rep.Guarantee.checked_points)
           (List.concat
              (List.init sites (fun s ->
                   Monitor.family_verdicts m ~source:(base_of s 0)
                     ~target:(follower_of s)))))
  in
  (trace_events, throughput, mismatches)

let exp_e18 () =
  let table =
    Table.create
      ~title:
        "E18: streaming-monitor soak — indexed dispatch throughput with live \
         §3.3 monitors on vs off"
      ~columns:
        [ "sites"; "rules/site"; "rate"; "events"; "trace events";
          "monitor off ev/s"; "monitor on ev/s"; "overhead"; "fold mismatches" ]
  in
  (* No reduced smoke sweep here: the whole experiment is nine ~170 ms
     run pairs (~4 s), and shrinking the timed section toward 10 ms
     turns the overhead column into noise even with nine rounds. *)
  let events = 50_000 in
  let sites = 32 and constraints = 256 and rate = 100.0 in
  (* Alternated best-of-three per configuration, each run from a
     compacted heap: a run retains a ~200k-event trace, so without the
     compaction the second configuration always measures on a grown,
     fragmented major heap and the few percent being measured drown in
     GC pacing.  Best-of (not mean) because noise only ever slows a run
     down. *)
  let timed ~monitor =
    Gc.compact ();
    e18_run ~monitor ~sites ~constraints ~events ~rate
  in
  let best (n1, t1, m1) (n2, t2, m2) =
    if n1 <> n2 then
      failwith (Printf.sprintf "E18: repeat produced %d events vs %d" n2 n1);
    (n1, Float.max t1 t2, max m1 m2)
  in
  (* Discard one small untimed run first: the first simulation of a
     process pays ~40 ms of page faults and lazy initialisation, which
     is ~15% of a timed run and would land entirely on whichever
     configuration happens to go first. *)
  ignore (e18_run ~monitor:true ~sites ~constraints ~events:(events / 20) ~rate);
  (* Alternate which configuration goes first in a round: the second
     run of a pair inherits the first's heap and cache footprint, and
     that position tax would otherwise land on one side of every
     ratio. *)
  let rounds =
    List.init 9 (fun i ->
        if i mod 2 = 0 then (timed ~monitor:false, timed ~monitor:true)
        else
          let on = timed ~monitor:true in
          (timed ~monitor:false, on))
  in
  let offs = List.map fst rounds and ons = List.map snd rounds in
  let n_off, tput_off, _ = List.fold_left best (List.hd offs) (List.tl offs) in
  let n_on, tput_on, mismatches = List.fold_left best (List.hd ons) (List.tl ons) in
  (* Overhead from the ratio of per-configuration median throughputs.
     A per-round ratio compounds the noise of both its runs, so even
     the median of nine ratios swings by several points between
     invocations; each config's own median is far steadier, and the
     alternated ordering above keeps the two medians comparable. *)
  let median side =
    let ts = List.map (fun (_, tput, _) -> tput) side |> List.sort Float.compare in
    List.nth ts (List.length ts / 2)
  in
  let overhead = 1.0 -. (median ons /. median offs) in
  (* The monitor observes the trace; it must not add to it. *)
  if n_off <> n_on then
    failwith
      (Printf.sprintf "E18: monitor-off produced %d events, monitor-on %d" n_off
         n_on);
  if mismatches > 0 then
    failwith
      (Printf.sprintf "E18: %d streamed verdicts disagree with the fold"
         mismatches);
  let obs = Obs.create () in
  let labels =
    [ ("sites", string_of_int sites);
      ("constraints", string_of_int constraints);
      ("rate", Printf.sprintf "%.0f" rate) ]
  in
  Obs.gauge obs "e18_events_per_sec" ~labels:(("monitor", "off") :: labels)
    tput_off;
  Obs.gauge obs "e18_events_per_sec" ~labels:(("monitor", "on") :: labels) tput_on;
  Obs.gauge obs "e18_overhead_pct" ~labels (100.0 *. overhead);
  Obs.gauge obs "e18_watched_copies" ~labels (float_of_int sites);
  Table.add_row table
    [
      string_of_int sites;
      string_of_int constraints;
      Printf.sprintf "%.0f" rate;
      string_of_int events;
      string_of_int n_on;
      Printf.sprintf "%.0f" tput_off;
      Printf.sprintf "%.0f" tput_on;
      Printf.sprintf "%.1f%%" (100.0 *. overhead);
      string_of_int mismatches;
    ];
  record_snapshot "e18" obs;
  Table.print table;
  Printf.printf
    "Shape check: streaming monitors cost <= 10%% of indexed dispatch \
     throughput\nat 32 sites x 256 rules/site: %s\n(every streamed verdict was \
     cross-checked against the post-hoc fold)\n"
    (if overhead <= 0.10 then "yes" else Printf.sprintf "NO (%.1f%%)" (100.0 *. overhead))

(* ------------------------------------------------------------------ *)
(* E19: chase-compiled vs hand-written rules — compile equivalence     *)
(* and dispatch-throughput parity at one E15 grid point                *)
(* ------------------------------------------------------------------ *)

module Chase = Cm_chase.Chase

(* The same copy program twice: hand-written §4.2 propagation rules,
   and the rules Chase.to_rules compiles from the equivalent TGDs
   [X{s}_{k}(v) -> Y{s}_{k}(v)].  Both lists must render identically —
   the compile-time half of the differential that test_chase runs at
   execution level on the payroll workload. *)
let e19_rules ~sites ~constraints =
  let hand =
    List.concat
      (List.init sites (fun s ->
           List.init constraints (fun k ->
               Rule.make
                 ~id:(Printf.sprintf "r%d_%d" s k)
                 ~delta:5.0
                 ~lhs:
                   (Template.make "N"
                      [ Expr.Item (Printf.sprintf "X%d_%d" s k, []); Expr.Var "v" ])
                 (Rule.Steps
                    [
                      {
                        Rule.guard = Expr.Const (Value.Bool true);
                        template =
                          Template.make "WR"
                            [ Expr.Item (Printf.sprintf "Y%d_%d" s k, []); Expr.Var "v" ];
                      };
                    ]))))
  in
  let deps =
    List.concat
      (List.init sites (fun s ->
           List.init constraints (fun k ->
               match
                 Chase.parse
                   (Printf.sprintf "r%d_%d: X%d_%d(v) -> Y%d_%d(v)" s k s k s k)
               with
               | Ok d -> d
               | Error m -> failwith ("E19: dependency does not parse: " ^ m))))
  in
  if not (Chase.weakly_acyclic deps) then
    failwith "E19: the copy program must be weakly acyclic";
  let compiled =
    match Chase.to_rules deps with
    | Ok rs -> rs
    | Error m -> failwith ("E19: to_rules refused the program: " ^ m)
  in
  (hand, compiled, deps)

let e19_run ~rules ~sites ~constraints ~events ~rate =
  let site_of s = "s" ^ string_of_int s in
  let base_of s k = Printf.sprintf "X%d_%d" s k in
  let locator item =
    let base = item.Item.base in
    match String.index_opt base '_' with
    | Some i -> "s" ^ String.sub base 1 (i - 1)
    | None -> site_of 0
  in
  let config = Sys_.Config.(seeded 1900 |> with_dispatch Shell.Indexed) in
  let system = Sys_.create ~config locator in
  let sim = Sys_.sim system in
  let shells =
    Array.init sites (fun s -> Sys_.add_shell system ~site:(site_of s))
  in
  (* Distribute by LHS site exactly as Toolkit.build does (§4.1): rule
     r{s}_{k} triggers on X{s}_{k}, which locates to site s. *)
  let by_site = Array.make sites [] in
  List.iter
    (fun r ->
      let s =
        match String.index_opt r.Rule.id '_' with
        | Some i -> int_of_string (String.sub r.Rule.id 1 (i - 1))
        | None -> failwith ("E19: unexpected rule id " ^ r.Rule.id)
      in
      by_site.(s) <- r :: by_site.(s))
    rules;
  Array.iteri
    (fun s shell -> Shell.install_strategy shell (List.rev by_site.(s)))
    shells;
  let emitters =
    Array.init sites (fun s -> Shell.emitter_for shells.(s) ~site:(site_of s))
  in
  let interval = 1.0 /. rate in
  let i = ref 0 in
  let rec drive () =
    if !i < events then begin
      let s = !i mod sites in
      let k = !i / sites mod constraints in
      let item = Item.make (base_of s k) in
      let desc =
        { Event.name = "N"; args = [ Event.Ai item; Event.Av (Value.Int !i) ] }
      in
      incr i;
      ignore (emitters.(s) desc ~kind:Event.Spontaneous);
      Sim.schedule sim ~delay:interval drive
    end
  in
  Sim.schedule_at sim 0.0 drive;
  let t0 = Sys.time () in
  Sys_.run system ~until:(float_of_int events *. interval +. 100.0);
  let elapsed = Sys.time () -. t0 in
  let trace_events = Trace.length (Sys_.trace system) in
  let throughput =
    if elapsed > 0.0 then float_of_int trace_events /. elapsed else infinity
  in
  (trace_events, throughput)

let exp_e19 () =
  let sites = 32 and constraints = 256 and rate = 100.0 in
  let events = if !smoke_mode then 4_000 else 30_000 in
  let hand, compiled, deps = e19_rules ~sites ~constraints in
  (* Compile-time differential: byte-identical rule text. *)
  let hand_text = List.map Rule.to_string hand in
  let compiled_text = List.map Rule.to_string compiled in
  if hand_text <> compiled_text then
    failwith "E19: chase-compiled rules differ from the hand-written program";
  let n_hand, hand_tput = e19_run ~rules:hand ~sites ~constraints ~events ~rate in
  let n_chase, chase_tput =
    e19_run ~rules:compiled ~sites ~constraints ~events ~rate
  in
  if n_hand <> n_chase then
    failwith
      (Printf.sprintf "E19: hand-written produced %d events, chase-compiled %d"
         n_hand n_chase);
  let ratio = chase_tput /. hand_tput in
  let table =
    Table.create
      ~title:
        "E19: chase-compiled vs hand-written rules — same text, same trace, \
         same throughput"
      ~columns:
        [ "sites"; "rules/site"; "deps"; "events"; "trace events";
          "hand ev/s"; "chase ev/s"; "ratio" ]
  in
  Table.add_row table
    [
      string_of_int sites;
      string_of_int constraints;
      string_of_int (List.length deps);
      string_of_int events;
      string_of_int n_hand;
      Printf.sprintf "%.0f" hand_tput;
      Printf.sprintf "%.0f" chase_tput;
      Printf.sprintf "%.2fx" ratio;
    ];
  let obs = Obs.create () in
  let labels =
    [ ("sites", string_of_int sites); ("constraints", string_of_int constraints) ]
  in
  Obs.gauge obs "e19_events_per_sec" ~labels:(("program", "hand") :: labels)
    hand_tput;
  Obs.gauge obs "e19_events_per_sec" ~labels:(("program", "chase") :: labels)
    chase_tput;
  Obs.gauge obs "e19_throughput_ratio" ~labels ratio;
  Obs.gauge obs "e19_rules" ~labels (float_of_int (List.length compiled));
  record_snapshot "e19" obs;
  Table.print table;
  Printf.printf
    "Shape check: chase-compiled throughput within 2x of hand-written: %s\n\
     (rule text is byte-identical, so any gap is measurement noise)\n"
    (if ratio >= 0.5 && ratio <= 2.0 then "yes"
     else Printf.sprintf "NO (%.2fx)" ratio)

(* ------------------------------------------------------------------ *)
(* E20: sharded multi-domain fabric — near-linear domain scaling      *)
(* ------------------------------------------------------------------ *)

(* A ring federation at "millions of users" scale: [sites] shells, each
   owning [constraints] rules U(Xs_k, v) -> W(X(s+1)_k, v) — every
   firing crosses a site boundary, so at [shards] > 1 a fixed fraction
   of the traffic crosses domains too.  One constraint instance =
   (site, k) rule; the full sweep is 1024 x 1024 = 1,048,576 instances
   over 1024 sites.  All links run at base latency 1.0 with zero jitter
   (the conservative lookahead), injections are a pure function of the
   event index (no RNG), and each shard's driver injects exactly the
   events of its own sites at the same absolute instants regardless of
   layout — so the canonical trace digest must match the 1-shard run
   bit for bit while wall-clock drops with domains. *)

let e20_run ~sites ~constraints ~events ~rate ~shards =
  assert (sites mod shards = 0);
  let site_of s = "s" ^ string_of_int s in
  let base_of s k = Printf.sprintf "X%d_%d" s k in
  let locator item =
    let base = item.Item.base in
    match String.index_opt base '_' with
    | Some i -> "s" ^ String.sub base 1 (i - 1)
    | None -> site_of 0
  in
  let assign site =
    match int_of_string_opt (String.sub site 1 (String.length site - 1)) with
    | Some s -> s mod shards
    | None -> 0
  in
  let config =
    Sys_.Config.(
      seeded 2000 |> with_shards shards
      |> with_latency { Net.base = 1.0; jitter = 0.0 })
  in
  let fab = Fabric.create ~config ~assign locator in
  let shells =
    Array.init sites (fun s -> Fabric.add_shell fab ~site:(site_of s))
  in
  let rules = ref [] in
  for s = sites - 1 downto 0 do
    for k = constraints - 1 downto 0 do
      rules :=
        Rule.make
          ~id:(Printf.sprintf "r%d_%d" s k)
          ~delta:5.0
          ~lhs:(Template.make "U" [ Expr.Item (base_of s k, []); Expr.Var "v" ])
          (Rule.Steps
             [
               {
                 Rule.guard = Expr.Const (Value.Bool true);
                 template =
                   Template.make "W"
                     [
                       Expr.Item (base_of ((s + 1) mod sites) k, []);
                       Expr.Var "v";
                     ];
               };
             ])
        :: !rules
    done
  done;
  Fabric.install fab
    {
      Strategy.strategy_name = "e20-ring";
      description = "cross-site propagation ring";
      rules = !rules;
      aux_init = [];
    };
  let emitters =
    Array.init sites (fun s -> Shell.emitter_for shells.(s) ~site:(site_of s))
  in
  let interval = 1.0 /. rate in
  (* Event j is injected at time j * interval at site j mod sites with
     value j.  [sites mod shards = 0], so event j belongs to shard
     [j mod shards]: each shard drives its own arithmetic subsequence
     on its own wheel (self-rescheduling, like E15). *)
  for p = 0 to shards - 1 do
    if p < events then begin
      let sim = Sys_.sim (Fabric.system fab p) in
      let j = ref p in
      let rec drive () =
        if !j < events then begin
          let s = !j mod sites in
          let k = !j / sites mod constraints in
          let desc =
            {
              Event.name = "U";
              args =
                [ Event.Ai (Item.make (base_of s k)); Event.Av (Value.Int !j) ];
            }
          in
          j := !j + shards;
          ignore (emitters.(s) desc ~kind:Event.Spontaneous);
          Sim.schedule sim ~delay:(float_of_int shards *. interval) drive
        end
      in
      Fabric.at fab ~site:(site_of p) (float_of_int p *. interval) drive
    end
  done;
  let t0 = Unix.gettimeofday () in
  Fabric.run fab ~until:((float_of_int events *. interval) +. 50.0);
  let wall = Unix.gettimeofday () -. t0 in
  let processed = Fabric.events_processed fab in
  let digest = Fabric.trace_digest fab in
  (processed, wall, digest, Fabric.messages_forwarded fab)

let exp_e20 () =
  let sites, constraints, events, rate =
    if !smoke_mode then (64, 16, 4_000, 200.0) else (1024, 1024, 50_000, 200.0)
  in
  let shard_counts = if !smoke_mode then [ 1; 2; 4 ] else [ 1; 2; 4; 8 ] in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "E20: sharded fabric — %d sites x %d constraints/site = %d \
            instances, domain sweep"
           sites constraints (sites * constraints))
      ~columns:
        [ "shards"; "events"; "processed"; "wall s"; "ev/s"; "speedup";
          "x-shard msgs"; "digest" ]
  in
  let obs = Obs.create () in
  let base = ref None in
  let speedups = ref [] in
  List.iter
    (fun shards ->
      let processed, wall, digest, msgs =
        e20_run ~sites ~constraints ~events ~rate ~shards
      in
      let tput =
        if wall > 0.0 then float_of_int processed /. wall else infinity
      in
      let d1, t1 =
        match !base with
        | None ->
          base := Some (digest, tput);
          (digest, tput)
        | Some b -> b
      in
      (* The acceptance cross-check: every layout reproduces the
         sequential oracle's canonical trace, byte for byte. *)
      if not (String.equal digest d1) then
        failwith
          (Printf.sprintf "E20: digest diverged at %d shards (%s vs %s)"
             shards digest d1);
      let speedup = tput /. t1 in
      speedups := (shards, speedup) :: !speedups;
      let labels = [ ("shards", string_of_int shards) ] in
      Obs.gauge obs "e20_events_per_sec" ~labels tput;
      Obs.gauge obs "e20_speedup" ~labels speedup;
      Obs.gauge obs "e20_wall_seconds" ~labels wall;
      Obs.gauge obs "e20_messages_forwarded" ~labels (float_of_int msgs);
      Obs.gauge obs "e20_digest_match" ~labels 1.0;
      Table.add_row table
        [
          string_of_int shards;
          string_of_int events;
          string_of_int processed;
          Printf.sprintf "%.2f" wall;
          Printf.sprintf "%.0f" tput;
          Printf.sprintf "%.2fx" speedup;
          string_of_int msgs;
          (if String.equal digest d1 then "= 1-shard" else "DIVERGED");
        ])
    shard_counts;
  Obs.gauge obs "e20_constraint_instances" (float_of_int (sites * constraints));
  Obs.gauge obs "e20_cores"
    (float_of_int (Domain.recommended_domain_count ()));
  record_snapshot "e20" obs;
  Table.print table;
  let cores = Domain.recommended_domain_count () in
  let best_shards, best =
    List.fold_left
      (fun (bs, b) (s, sp) -> if sp > b then (s, sp) else (bs, b))
      (1, 1.0) !speedups
  in
  Printf.printf
    "Digest check: every shard count reproduced the 1-shard canonical trace.\n";
  if cores >= 8 && List.mem_assoc 8 !speedups then
    Printf.printf
      "Shape check: >= 3x at 8 domains: %s (best %.2fx at %d shards, %d cores)\n"
      (if List.assoc 8 !speedups >= 3.0 then "yes"
       else Printf.sprintf "NO (%.2fx)" (List.assoc 8 !speedups))
      best best_shards cores
  else
    Printf.printf
      "Shape check: >= 3x at 8 domains is hardware-gated — this host \
       recommends %d domain(s); best observed %.2fx at %d shards.\n"
      cores best best_shards

(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("e1", exp_e1);
    ("e2", exp_e2);
    ("e3", exp_e3);
    ("e4", exp_e4);
    ("e5", exp_e5);
    ("e6", exp_e6);
    ("e7", exp_e7);
    ("e8", exp_e8);
    ("e9", exp_e9);
    ("e10", exp_e10);
    ("e11", exp_e11);
    ("e12", exp_e12);
    ("e13", exp_e13);
    ("e14", exp_e14);
    ("e15", exp_e15);
    ("e16", exp_e16);
    ("e17", exp_e17);
    ("e18", exp_e18);
    ("e19", exp_e19);
    ("e20", exp_e20);
  ]

let () =
  let args = Array.to_list Sys.argv in
  let rec find_opt_arg flag = function
    | f :: v :: _ when f = flag -> Some v
    | _ :: rest -> find_opt_arg flag rest
    | [] -> None
  in
  let wanted =
    Option.map String.lowercase_ascii (find_opt_arg "--exp" args)
  in
  let json_out = find_opt_arg "--json" args in
  let micro = not (List.mem "--no-micro" args) in
  smoke_mode := List.mem "--smoke" args;
  (match wanted with
   | Some name -> (
     match List.assoc_opt name experiments with
     | Some f -> f ()
     | None ->
       Printf.eprintf "unknown experiment %s (e1..e20)\n" name;
       exit 1)
   | None ->
     List.iter
       (fun (name, f) ->
         Printf.printf "---------------------------------------------------------- %s\n"
           (String.uppercase_ascii name);
         f ())
       experiments;
     if micro then micro_benchmarks ());
  match json_out with
  | Some path ->
    write_snapshots path;
    Printf.printf "wrote %d registry snapshots to %s\n"
      (List.length !json_snapshots) path
  | None -> ()
